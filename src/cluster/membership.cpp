#include "cluster/membership.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace stash::cluster {

const char* to_string(MemberState state) noexcept {
  switch (state) {
    case MemberState::kAlive: return "alive";
    case MemberState::kSuspect: return "suspect";
    case MemberState::kDead: return "dead";
    case MemberState::kLeft: return "left";
  }
  return "?";
}

GossipMembership::GossipMembership(MembershipConfig config,
                                   std::uint32_t num_nodes,
                                   sim::EventLoop& loop, Transport transport,
                                   Liveness liveness,
                                   std::uint32_t initial_members)
    : config_(config),
      num_nodes_(num_nodes),
      loop_(loop),
      transport_(std::move(transport)),
      liveness_(std::move(liveness)),
      rng_(config.seed),
      views_(num_nodes + 1, std::vector<MemberInfo>(num_nodes)),
      rumors_(num_nodes + 1),
      probes_(num_nodes + 1),
      tick_counts_(num_nodes + 1, 0),
      incarnations_(num_nodes, 0),
      registered_(num_nodes, true),
      wants_left_(num_nodes, false) {
  if (num_nodes == 0)
    throw std::invalid_argument("GossipMembership: empty cluster");
  if (config_.probe_interval <= 0 || config_.probe_timeout <= 0 ||
      config_.suspicion_timeout <= 0)
    throw std::invalid_argument("GossipMembership: timers must be positive");
  if (config_.ping_req_fanout < 0 || config_.piggyback_limit < 0 ||
      config_.update_retransmits < 1 || config_.announce_fanout < 0)
    throw std::invalid_argument("GossipMembership: negative fan-out/limit");
  if (initial_members != kAllSlots) {
    if (initial_members == 0 || initial_members > num_nodes)
      throw std::invalid_argument("GossipMembership: bad initial member count");
    // Slots beyond the initial membership are standbys: kLeft in every
    // view from the start, waiting for an explicit join().
    for (std::uint32_t s = initial_members; s < num_nodes_; ++s) {
      registered_[s] = false;
      for (auto& view : views_) view[s] = MemberInfo{MemberState::kLeft, 0, 0};
    }
  }
}

std::size_t GossipMembership::index_of(std::uint32_t observer) const {
  if (observer == sim::kFrontendNode) return num_nodes_;
  if (observer >= num_nodes_)
    throw std::invalid_argument("GossipMembership: unknown observer");
  return observer;
}

const MemberInfo& GossipMembership::info(std::uint32_t observer,
                                         std::uint32_t node) const {
  if (node >= num_nodes_)
    throw std::invalid_argument("GossipMembership: unknown member");
  return views_[index_of(observer)][node];
}

void GossipMembership::start() {
  if (!config_.enabled || started_) return;
  started_ = true;
  for (std::size_t obs = 0; obs <= num_nodes_; ++obs) {
    const auto offset = static_cast<sim::SimTime>(
        1 + rng_.next_below(static_cast<std::uint64_t>(config_.probe_interval)));
    loop_.schedule_background(offset, [this, obs] { tick(obs); });
  }
}

void GossipMembership::tick(std::size_t obs) {
  loop_.schedule_background(config_.probe_interval, [this, obs] { tick(obs); });
  if (!liveness_(address_of(obs))) return;  // crashed: keep idling
  if (obs < num_nodes_ && !registered_[obs]) return;  // standby/left: no probing
  ++tick_counts_[obs];

  std::vector<std::uint32_t> live, dead;
  for (std::uint32_t m = 0; m < num_nodes_; ++m) {
    if (obs < num_nodes_ && m == obs) continue;
    if (views_[obs][m].state == MemberState::kLeft) continue;  // not a member
    (views_[obs][m].state == MemberState::kDead ? dead : live).push_back(m);
  }
  // Mostly probe members believed up; every Nth round reach for a member
  // believed dead instead, so a healed partition heals the *views* too —
  // the probe tells the target it is considered dead, and its bumped
  // incarnation refutes the rumor (see send_ping).
  const bool reach_for_dead =
      config_.dead_probe_every > 0 && !dead.empty() &&
      (live.empty() ||
       tick_counts_[obs] % static_cast<std::uint64_t>(config_.dead_probe_every) == 0);
  const auto& pool = reach_for_dead ? dead : live;
  if (pool.empty()) return;
  send_ping(obs, pool[rng_.next_below(pool.size())]);
}

void GossipMembership::send_ping(std::size_t obs, std::uint32_t target) {
  ++stats_.probes_sent;
  const std::uint64_t seq = ++next_seq_;
  probes_[obs] = Probe{target, seq, /*acked=*/false};
  auto updates = take_updates(obs);
  // Always tell a non-alive-believed target what we think of it: that is
  // the trigger for its refutation.
  const MemberInfo& belief = views_[obs][target];
  if (belief.state != MemberState::kAlive)
    updates.push_back({target, belief.state, belief.incarnation});
  const std::uint64_t self_inc = obs < num_nodes_ ? incarnations_[obs] : 0;
  transport_(address_of(obs), target, wire_bytes(updates.size()),
             [this, sender = address_of(obs), tobs = std::size_t{target}, seq,
              updates = std::move(updates), self_inc] {
               on_ping(tobs, sender, seq, updates, self_inc);
             });
  loop_.schedule_background(config_.probe_timeout,
                            [this, obs, seq] { on_direct_timeout(obs, seq); });
}

void GossipMembership::on_ping(std::size_t obs, std::uint32_t sender,
                               std::uint64_t seq,
                               std::vector<MembershipUpdate> updates,
                               std::uint64_t sender_incarnation) {
  apply_all(obs, updates);
  evidence_alive(obs, sender, sender_incarnation);
  auto reply = take_updates(obs);
  if (obs < num_nodes_ && registered_[obs])  // self-assertion rides every ack
    reply.push_back({static_cast<std::uint32_t>(obs), MemberState::kAlive,
                     incarnations_[obs]});
  const std::uint64_t self_inc = obs < num_nodes_ ? incarnations_[obs] : 0;
  transport_(address_of(obs), sender, wire_bytes(reply.size()),
             [this, origin = index_of(sender), responder = address_of(obs), seq,
              reply = std::move(reply), self_inc] {
               on_ack(origin, responder, seq, reply, self_inc);
             });
}

void GossipMembership::on_ack(std::size_t obs, std::uint32_t target,
                              std::uint64_t seq,
                              std::vector<MembershipUpdate> updates,
                              std::uint64_t target_incarnation) {
  apply_all(obs, updates);
  evidence_alive(obs, target, target_incarnation);
  Probe& probe = probes_[obs];
  if (probe.seq == seq && !probe.acked) {
    probe.acked = true;
    ++stats_.acks_received;
  }
}

void GossipMembership::on_direct_timeout(std::size_t obs, std::uint64_t seq) {
  const Probe& probe = probes_[obs];
  if (probe.seq != seq || probe.acked) return;
  if (!liveness_(address_of(obs))) return;
  const std::uint32_t target = probe.target;
  // Indirect round: ask k live proxies to ping the target for us, so one
  // lossy or slow link does not condemn a healthy node.
  std::vector<std::uint32_t> pool;
  for (std::uint32_t m = 0; m < num_nodes_; ++m) {
    if ((obs < num_nodes_ && m == obs) || m == target) continue;
    if (views_[obs][m].state == MemberState::kAlive) pool.push_back(m);
  }
  for (int k = 0; k < config_.ping_req_fanout && !pool.empty(); ++k) {
    const std::size_t pick = rng_.next_below(pool.size());
    const std::uint32_t proxy = pool[pick];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    ++stats_.ping_reqs_sent;
    transport_(address_of(obs), proxy, wire_bytes(0),
               [this, pobs = std::size_t{proxy}, origin = address_of(obs),
                target, seq] { on_ping_req(pobs, origin, target, seq); });
  }
  loop_.schedule_background(2 * config_.probe_timeout, [this, obs, seq] {
    on_indirect_timeout(obs, seq);
  });
}

void GossipMembership::on_ping_req(std::size_t obs, std::uint32_t origin,
                                   std::uint32_t target, std::uint64_t seq) {
  // Relay ping: the target's ack flows back through us to the origin.
  transport_(
      address_of(obs), target, wire_bytes(0),
      [this, proxy = address_of(obs), origin, target, seq] {
        const std::uint64_t target_inc = incarnations_[target];
        transport_(
            target, proxy, wire_bytes(1),
            [this, proxy, origin, target, seq, target_inc] {
              evidence_alive(index_of(proxy), target, target_inc);
              transport_(proxy, origin, wire_bytes(1),
                         [this, origin, target, seq, target_inc] {
                           on_ack(index_of(origin), target, seq, {},
                                  target_inc);
                         });
            });
      });
}

void GossipMembership::on_indirect_timeout(std::size_t obs, std::uint64_t seq) {
  const Probe& probe = probes_[obs];
  if (probe.seq != seq || probe.acked) return;
  if (!liveness_(address_of(obs))) return;
  suspect(obs, probe.target);
}

void GossipMembership::suspect(std::size_t obs, std::uint32_t target) {
  const MemberInfo& cur = views_[obs][target];
  if (cur.state != MemberState::kAlive) return;
  ++stats_.suspicions;
  apply_at(obs, {target, MemberState::kSuspect, cur.incarnation});
}

bool GossipMembership::apply(std::uint32_t observer,
                             const MembershipUpdate& update) {
  return apply_at(index_of(observer), update);
}

bool GossipMembership::apply_at(std::size_t obs,
                                const MembershipUpdate& update) {
  if (update.node >= num_nodes_) return false;
  // Only a member may speak for itself: rumors of our own suspicion or
  // death are refuted by bumping the incarnation, never accepted.  A node
  // that chose to leave does not refute — out-bidding its own departure
  // rumor would trap the cluster in a join/leave flap.
  if (obs < num_nodes_ && update.node == obs) {
    if (wants_left_[obs]) return false;
    if (update.state != MemberState::kAlive &&
        update.incarnation >= incarnations_[obs]) {
      incarnations_[obs] = update.incarnation + 1;
      views_[obs][obs] =
          MemberInfo{MemberState::kAlive, incarnations_[obs], loop_.now()};
      ++stats_.refutations;
      enqueue_update(obs, {update.node, MemberState::kAlive,
                           incarnations_[obs]});
      return true;
    }
    return false;
  }
  MemberInfo& cur = views_[obs][update.node];
  bool accept = false;
  switch (update.state) {
    case MemberState::kAlive:
      accept = update.incarnation > cur.incarnation;
      break;
    case MemberState::kSuspect:
      accept = (cur.state == MemberState::kAlive &&
                update.incarnation >= cur.incarnation) ||
               update.incarnation > cur.incarnation;
      break;
    case MemberState::kDead:
      // Dead wins ties: it takes a *bumped* incarnation to come back.
      // It does not override an intentional departure at equal
      // incarnation, though — left slots are settled, not faulted.
      accept = (cur.state != MemberState::kDead &&
                cur.state != MemberState::kLeft &&
                update.incarnation >= cur.incarnation) ||
               update.incarnation > cur.incarnation;
      break;
    case MemberState::kLeft:
      // Departure wins ties like death does; only a join() with a bumped
      // incarnation (kAlive, inc > cur) brings the slot back.
      accept = (cur.state != MemberState::kLeft &&
                update.incarnation >= cur.incarnation) ||
               update.incarnation > cur.incarnation;
      break;
  }
  if (!accept) return false;
  const MemberState prev = cur.state;
  if (prev == MemberState::kSuspect && update.state == MemberState::kAlive)
    ++stats_.false_suspicions;
  if (prev != MemberState::kDead && update.state == MemberState::kDead)
    ++stats_.deaths_declared;
  cur = MemberInfo{update.state, update.incarnation, loop_.now()};
  ++stats_.updates_applied;
  enqueue_update(obs, update);
  if (update.state == MemberState::kSuspect) {
    // Every observer runs its own suspect->dead clock; a refutation
    // anywhere within the window clears it epidemically.
    loop_.schedule_background(
        config_.suspicion_timeout,
        [this, obs, node = update.node, inc = update.incarnation] {
          const MemberInfo& v = views_[obs][node];
          if (v.state == MemberState::kSuspect && v.incarnation == inc)
            apply_at(obs, {node, MemberState::kDead, inc});
        });
  }
  if (on_state_ && prev != update.state)
    on_state_(address_of(obs), update.node, update.state);
  return true;
}

void GossipMembership::apply_all(std::size_t obs,
                                 const std::vector<MembershipUpdate>& updates) {
  for (const MembershipUpdate& update : updates) apply_at(obs, update);
}

void GossipMembership::evidence_alive(std::size_t obs, std::uint32_t node,
                                      std::uint64_t incarnation) {
  if (node >= num_nodes_) return;  // the frontend is not a member
  apply_at(obs, {node, MemberState::kAlive, incarnation});
}

void GossipMembership::enqueue_update(std::size_t obs,
                                      const MembershipUpdate& update) {
  auto& queue = rumors_[obs];
  // Latest belief about a member supersedes any queued rumor about it.
  queue.erase(std::remove_if(queue.begin(), queue.end(),
                             [&](const PendingUpdate& pending) {
                               return pending.update.node == update.node;
                             }),
              queue.end());
  queue.push_back(PendingUpdate{update, config_.update_retransmits});
  if (queue.size() > static_cast<std::size_t>(2 * num_nodes_))
    queue.pop_front();
}

std::vector<MembershipUpdate> GossipMembership::take_updates(std::size_t obs) {
  auto& queue = rumors_[obs];
  std::vector<MembershipUpdate> out;
  const std::size_t count =
      std::min(queue.size(), static_cast<std::size_t>(config_.piggyback_limit));
  for (std::size_t i = 0; i < count; ++i) {
    PendingUpdate pending = queue.front();
    queue.pop_front();
    out.push_back(pending.update);
    if (--pending.remaining > 0) queue.push_back(pending);
  }
  return out;
}

void GossipMembership::announce(std::uint32_t node) {
  if (!config_.enabled) return;
  if (node >= num_nodes_)
    throw std::invalid_argument("GossipMembership::announce: unknown member");
  if (!registered_[node]) return;  // a left slot only returns via join()
  ++stats_.announces;
  wants_left_[node] = false;
  ++incarnations_[node];
  const std::uint64_t inc = incarnations_[node];
  views_[node][node] = MemberInfo{MemberState::kAlive, inc, loop_.now()};
  enqueue_update(node, {node, MemberState::kAlive, inc});
  if (!started_) return;
  std::vector<std::uint32_t> pool;
  for (std::uint32_t m = 0; m < num_nodes_; ++m)
    if (m != node && views_[node][m].state != MemberState::kLeft)
      pool.push_back(m);
  for (int k = 0; k < config_.announce_fanout && !pool.empty(); ++k) {
    const std::size_t pick = rng_.next_below(pool.size());
    const std::uint32_t member = pool[pick];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    auto updates = take_updates(node);
    updates.push_back({node, MemberState::kAlive, inc});
    transport_(node, member, wire_bytes(updates.size()),
               [this, mobs = std::size_t{member}, node, inc,
                updates = std::move(updates)] {
                 apply_all(mobs, updates);
                 evidence_alive(mobs, node, inc);
               });
  }
}

void GossipMembership::join(std::uint32_t node) {
  if (node >= num_nodes_)
    throw std::invalid_argument("GossipMembership::join: unknown slot");
  ++stats_.joins;
  registered_[node] = true;
  wants_left_[node] = false;
  // The joiner's alive@inc+1 out-bids its kLeft record everywhere; the
  // frontend (which admits joiners into the ring) hears it directly so a
  // ring decision never waits on gossip fan-out alone.
  announce(node);
  if (config_.enabled)
    apply_at(num_nodes_,
             {node, MemberState::kAlive, incarnations_[node]});
}

void GossipMembership::leave(std::uint32_t node) {
  if (node >= num_nodes_)
    throw std::invalid_argument("GossipMembership::leave: unknown slot");
  if (!registered_[node]) return;
  ++stats_.leaves;
  registered_[node] = false;
  wants_left_[node] = true;
  ++incarnations_[node];
  const std::uint64_t inc = incarnations_[node];
  const MembershipUpdate update{node, MemberState::kLeft, inc};
  // The leaver adopts and gossips its own departure...
  views_[node][node] = MemberInfo{MemberState::kLeft, inc, loop_.now()};
  enqueue_update(node, update);
  // ...and the frontend, which drives decommissions, seconds the rumor —
  // a leaver that crashes mid-farewell still converges to left, not dead.
  if (config_.enabled) apply_at(num_nodes_, update);
}

void GossipMembership::reset_view(std::uint32_t node) {
  if (node >= num_nodes_)
    throw std::invalid_argument("GossipMembership::reset_view: unknown member");
  // Rebuild from the ground-truth ledger: current members presumed alive,
  // everyone else remembered as left (both survive the crash, like the
  // incarnations they are pinned with).
  for (std::uint32_t m = 0; m < num_nodes_; ++m)
    views_[node][m] = registered_[m]
                          ? MemberInfo{MemberState::kAlive, 0, loop_.now()}
                          : MemberInfo{MemberState::kLeft, incarnations_[m],
                                       loop_.now()};
  views_[node][node] = MemberInfo{registered_[node] ? MemberState::kAlive
                                                    : MemberState::kLeft,
                                  incarnations_[node], loop_.now()};
  rumors_[node].clear();
  probes_[node] = Probe{};  // stale probe timers no longer match
}

}  // namespace stash::cluster
