// The simulated STASH cluster (paper §VI, §VII, §VIII-A).
//
// Assembles the full system: a 120-node (configurable) cluster where each
// node runs a Galileo block store, a local STASH graph + guest graph, a
// query engine, a routing table, and an 8-worker request server — all on a
// shared deterministic event loop.  A front-end splits each user query
// into per-partition subqueries (scatter), routes them over the zero-hop
// DHT, and merges the Cell summaries (gather).
//
// Hotspot autoscaling (§VII) runs exactly the paper's protocol: pending-
// queue threshold detection, top-Clique selection, antipode helper search
// with Distress/Ack, Replication Request/Response, routing-table
// population, probabilistic rerouting, cooldown, and TTL purging.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/membership.hpp"
#include "common/rng.hpp"
#include "core/audit.hpp"
#include "core/clique.hpp"
#include "core/query_engine.hpp"
#include "core/routing_table.hpp"
#include "dht/partitioner.hpp"
#include "exec/parallel_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/cost_model.hpp"
#include "sim/event_loop.hpp"
#include "sim/fault.hpp"
#include "sim/server.hpp"

namespace stash::cluster {

enum class SystemMode {
  Basic,                // plain Galileo: every query scans disk
  Stash,                // full STASH: caching + dynamic replication
  StashNoReplication,   // STASH caching without hotspot handoff (Fig 6d base)
};

/// Where a hotspotted node looks for Clique helpers (§VII-B.3 vs the
/// nearby-replication strategy of related work [17] — kept for ablation).
enum class HelperPolicy {
  Antipode,   // node owning the diametrically opposite region (the paper)
  Neighbor,   // node owning a lateral neighbor region of the hot Clique
};

/// Metrics-driven elastic scaling (ROADMAP item 4).  Evaluated on a
/// background tick over the PR-3 observability signals: peak server queue
/// depth and admission-control sheds.  Hysteresis (consecutive ticks above
/// or below the watermarks) plus a cooldown between actions keep a bursty
/// workload from flapping the ring.
struct AutoscalePolicy {
  bool enabled = false;
  /// Policy evaluation period.
  sim::SimTime eval_interval = 500 * sim::kMillisecond;
  /// Scale OUT when the peak per-node queue exceeds this...
  std::size_t high_queue = 16;
  /// ...or this many jobs were shed since the previous tick.
  std::uint64_t high_shed_delta = 8;
  /// Scale IN when the peak queue stays at or below this (and nothing shed).
  std::size_t low_queue = 1;
  /// Consecutive ticks a watermark must hold before acting.
  int hysteresis_ticks = 3;
  /// Minimum spacing between scaling actions (lets a rebalance land and
  /// the metrics respond before the next decision).
  sim::SimTime cooldown = 5 * sim::kSecond;
  /// Never scale in below this many ring members.
  std::uint32_t min_nodes = 1;
};

struct ClusterConfig {
  std::uint32_t num_nodes = 120;       // §VIII-A testbed size
  int workers_per_node = 8;            // 8-core Xeon per node
  int partition_prefix_length = 2;     // first 2 geohash characters
  SystemMode mode = SystemMode::Stash;
  StashConfig stash;
  sim::CostModel cost;
  std::uint64_t seed = 0x5354415348ULL;

  // Message sizing for the network cost model.
  std::size_t request_bytes = 256;
  std::size_t response_cell_bytes = 12;   // cell id + requested aggregate
  // (Replication transfers are sized from the real wire codec, not a
  // per-cell constant — see send_distress.)
  /// Front-end parse/render overhead added to every query's latency.
  sim::SimTime frontend_overhead = 1 * sim::kMillisecond;
  /// Per-subquery fixed server-side overhead (dispatch, deserialize).
  sim::SimTime subquery_overhead = 200;   // 0.2 ms
  /// Attempts to find a helper around the antipode before giving up.
  int antipode_retries = 8;
  HelperPolicy helper_policy = HelperPolicy::Antipode;
  /// Throughput-bench mode: count result Cells but do not retain their
  /// summaries at the front-end (bounds memory for 10k-query bursts).
  bool discard_payload = false;

  // --- fault model & degraded operation ---
  /// Scripted faults (node crashes/restarts, message loss, slow links).
  /// An empty plan is a healthy cluster; the request path below still
  /// applies, so a hung subquery can never hang a query.
  sim::FaultPlan fault_plan;
  /// Front-end per-subquery timeout before a retry (0 disables timers —
  /// legacy behavior, hangs if a node dies).  The default is far above any
  /// healthy-path latency so fault-free runs never trip it.
  sim::SimTime subquery_timeout = 300 * sim::kSecond;
  /// Attempts per subquery (first try + retries) before giving up and
  /// completing the query as partial.
  int subquery_max_attempts = 4;
  /// Base delay before retry k is 2^(k-1) * this, +/- retry_jitter.
  sim::SimTime retry_backoff = 5 * sim::kMillisecond;
  /// Uniform jitter fraction applied to the retry backoff (de-synchronizes
  /// retry storms; drawn from the front-end Rng, so still deterministic).
  double retry_jitter = 0.2;
  /// Failover: when a partition's owner is suspected dead, re-scan the
  /// partition from durable storage on the next live DHT successor.
  bool failover_to_successor = true;
  /// How long a timed-out node stays on the suspect list (circuit
  /// breaker: suspected nodes are skipped without paying the timeout).
  sim::SimTime suspect_ttl = 60 * sim::kSecond;
  /// Timeout for one Distress->Ack->Replication->Response handoff round;
  /// expiry is treated as a NACK (the antipode retry continues).
  sim::SimTime handoff_timeout = 5 * sim::kSecond;

  // --- membership & post-crash recovery ---
  /// SWIM-style gossip failure detection (cluster/membership.hpp).  When
  /// enabled (the default) every node and the front-end keep their own
  /// alive/suspect/dead view of the cluster, and that view — not only the
  /// front-end's timeout-driven circuit breaker — gates dispatch,
  /// failover, rerouting, and handoff target selection.  Gossip traffic
  /// rides the normal message path, so it is subject to the same drops,
  /// partitions, and latency as queries.
  MembershipConfig membership;
  /// Anti-entropy cache re-warming after a restart or partition heal: the
  /// rejoining node exchanges compact PLM digests (per-chunk bitmap
  /// hashes) with replica holders and pulls back only the complete chunks
  /// it is missing, over the existing Replication payload path.  A pure
  /// latency optimisation — correctness never depends on it (the durable
  /// store remains the truth).
  bool recovery = true;
  /// Cap on chunks pulled back per digest exchange (bounds the transfer).
  std::size_t recovery_max_chunks = 512;
  /// Digest peers consulted per recovery round (ring successors of the
  /// node's partitions, deduped).
  std::size_t recovery_peers = 3;
  /// Minimum spacing between anti-entropy rounds for one node.
  sim::SimTime recovery_cooldown = 1 * sim::kSecond;

  // --- overload control & graceful degradation ---
  /// Bound on each node server's pending queue (jobs waiting for a
  /// worker); 0 keeps the legacy unbounded queue.  A full queue sheds work
  /// according to admission_policy and the shed job completes immediately
  /// with an explicit outcome — overload becomes visible back-pressure
  /// instead of unbounded queue growth.
  std::size_t queue_limit = 0;
  sim::AdmissionPolicy admission_policy = sim::AdmissionPolicy::kRejectNew;
  /// End-to-end deadline per query (0 = none).  Propagated into every
  /// subquery, retry, and server job: each hop gets only the remaining
  /// budget, and at the deadline the query finalizes with whatever has
  /// arrived (missing partitions reported honestly).
  sim::SimTime query_deadline = 0;
  /// Per-query retry token bucket (0 = unlimited, the legacy behavior).
  /// Each retry spends one token; each exact subquery response refills
  /// retry_refill_per_success tokens (capped at the initial budget), so
  /// retries can never multiply offered load past a configured factor.
  double retry_budget = 0.0;
  double retry_refill_per_success = 0.5;
  /// Clamp on the exponential retry backoff: delay before attempt k+1 is
  /// min(2^(k-1) * retry_backoff, max_retry_backoff), +/- jitter.
  /// 0 disables the clamp (unbounded doubling).
  sim::SimTime max_retry_backoff = 10 * sim::kSecond;
  /// When a subquery is shed or expires in a node's queue, answer it from
  /// the nearest cached PLM-complete ancestor level (coarse but correct)
  /// instead of retrying against a node that just said "too busy".
  bool degraded_answers = true;

  // --- end-to-end data integrity ---
  /// Verify per-block checksums on every storage scan.  A rotted block is
  /// detected, quarantined, and its records withheld (the query completes
  /// as an honest partial); off serves silently-wrong records — only for
  /// demonstrating the baseline checksums exist to prevent.
  bool verify_checksums = true;
  /// Background scrubber period (0 = off).  Each tick verifies the block
  /// table, repairs quarantined blocks from pristine data, and walks one
  /// node's chunk digests against its ring successors over the
  /// anti-entropy path (diverged or rotted cached replicas are dropped and
  /// re-pulled).
  sim::SimTime scrub_interval = 0;
  /// Redelivery budget for a wire frame that fails integrity checks at the
  /// receiver.  Each redelivery is a fresh transmission (fresh corruption
  /// dice); a frame still corrupt after the budget is a poison message and
  /// is dropped (counted, never parsed).
  int max_redeliveries = 2;

  // --- observability ---
  /// Record a TraceSpan tree for every query (obs/trace.hpp).  Spans carry
  /// virtual timestamps, so tracing never perturbs simulated latency; turn
  /// it off only to shave real (wall-clock) overhead in huge benches.
  bool tracing = true;
  /// Completed traces retained (ring buffer; oldest evicted first).
  std::size_t trace_capacity = 256;

  // --- wall-clock execution (src/exec/, ROADMAP item 1) ---
  /// Worker threads per node for the wall-clock parallel datapath.  0
  /// keeps the pure discrete-event mode (node evaluations run inline on
  /// the sim thread).  With N > 0 each node shards its chunk work across
  /// N real threads through concurrency::MpmcRing; the sim stays the
  /// correctness oracle — answers are byte-identical at any thread count
  /// (tests/cluster/exec_cluster_test.cpp), virtual time still measures
  /// the cost model.  Every node gets its own pool, so keep node counts
  /// small when enabling this (examples use 8–32 nodes).
  std::size_t exec_threads = 0;
  /// Per-worker MpmcRing capacity for the exec pools (power of two >= 2).
  std::size_t exec_queue_capacity = 256;
  /// Wall-clock budget (host milliseconds) for one exec subquery
  /// evaluation; 0 = none.  On expiry the engine cancels outstanding
  /// chunks cooperatively and the node answers through the PR-4 pushback
  /// taxonomy (degraded cached ancestor, else honest retry/miss) instead
  /// of blocking the serve path (DESIGN.md §14).
  std::uint64_t exec_deadline_ms = 0;
  /// Seeded thread-level fault injection for the exec pools (inert by
  /// default) — task delays, task exceptions, worker stalls.
  exec::FaultHooks exec_faults;

  // --- elastic membership & ring rebalancing (ROADMAP item 4) ---
  /// Total addressable node slots.  0 (the default) keeps the historical
  /// fixed-size cluster.  When > num_nodes, slots [num_nodes, max_nodes)
  /// are provisioned as *standbys*: they exist (store access, server,
  /// empty caches) but start outside the membership ring (gossip kLeft)
  /// and own nothing until join_node() — or a scripted JoinEvent, or the
  /// autoscaler — admits them.
  std::uint32_t max_nodes = 0;
  /// How often the front-end compares the installed ring against its
  /// gossip view + join/leave intents.
  sim::SimTime ring_check_interval = 200 * sim::kMillisecond;
  /// A changed desired member set must hold stable this long before the
  /// epoch advances (debounces gossip churn mid-convergence).
  sim::SimTime ring_stabilize_delay = 400 * sim::kMillisecond;
  /// Deadline for one warm-transfer attempt of one moved partition; on
  /// expiry the attempt aborts and is retried (fresh attempt tag).
  sim::SimTime rebalance_transfer_deadline = 2 * sim::kSecond;
  /// Warm-transfer attempts per moved partition before flipping cold (the
  /// new owner serves from durable storage; warmth rebuilds on demand).
  int rebalance_max_attempts = 3;
  /// Cap on chunks pulled per moved partition (bounds each transfer).
  std::size_t rebalance_max_chunks = 512;
  /// Metrics-driven scale-out/scale-in (inert by default).
  AutoscalePolicy autoscale;
};

/// Per-partition report of what a query's answer actually contains — the
/// exact-vs-degraded coverage map a visual front-end renders from.
struct PartitionCoverage {
  enum class Kind : std::uint8_t {
    kExact,     // served at the requested resolution
    kDegraded,  // served from a cached coarser ancestor (see served_res)
    kMissing,   // no answer: every attempt failed or the deadline cut it
  };
  std::string partition;
  Kind kind = Kind::kMissing;
  /// The resolution actually served (== the requested resolution unless
  /// kDegraded).  Meaningless for kMissing.
  Resolution served_res;
  int attempts = 0;
};

struct QueryStats {
  /// Cluster-assigned id, usable with StashCluster::trace() to fetch the
  /// query's span tree (and with `stashctl --trace <id>`).
  std::uint64_t query_id = 0;
  sim::SimTime submitted_at = 0;
  sim::SimTime completed_at = 0;
  std::size_t result_cells = 0;
  std::size_t subqueries = 0;
  std::size_t rerouted_subqueries = 0;
  /// Subqueries that exhausted every attempt: their partitions are missing
  /// from the result.
  std::size_t failed_subqueries = 0;
  /// Retries the front-end issued across all subqueries (timeout-driven).
  std::size_t retries = 0;
  /// Subqueries served by a DHT successor because the owner was suspect.
  std::size_t failovers = 0;
  /// Admission-control pushbacks observed (job shed or expired in a node's
  /// queue) across all attempts — may exceed `subqueries` under retries.
  std::size_t shed_subqueries = 0;
  /// Partitions answered from a cached coarser ancestor level.
  std::size_t degraded_subqueries = 0;
  /// Subqueries still in flight when the query deadline fired: their
  /// partitions are missing from the result.
  std::size_t deadline_subqueries = 0;
  /// Storage blocks that failed checksum verification while serving this
  /// query.  Their days are withheld from the result (never wrong, just
  /// absent) and the query is flagged partial; the scrubber repairs them.
  std::size_t corrupt_blocks = 0;
  /// Degraded-but-correct answer: every returned Cell is exact, but one or
  /// more partitions were unreachable and are absent (§VII posture: cached
  /// state is volatile, storage is the truth; never hang, never corrupt).
  /// partial == (failed_subqueries + deadline_subqueries + corrupt_blocks
  /// > 0).
  bool partial = false;
  /// At least one partition was served coarser than requested.  A degraded
  /// query is complete (no holes) but not exact — distinct from partial.
  bool degraded = false;
  /// Absolute deadline this query ran under (0 = none).  The cluster
  /// guarantees completed_at <= deadline when set.
  sim::SimTime deadline = 0;
  /// One entry per partition, in scatter order.
  std::vector<PartitionCoverage> coverage;
  EvalBreakdown breakdown;  // summed over subqueries

  [[nodiscard]] sim::SimTime latency() const noexcept {
    return completed_at - submitted_at;
  }
};

/// Flat counter view kept for compatibility: every field is now backed by a
/// named metric in the cluster's MetricsRegistry (obs/metrics.hpp), and
/// StashCluster::metrics() materializes this struct from those counters.
/// New consumers should prefer metrics_registry().snapshot(), which also
/// carries gauges and latency histograms.
struct ClusterMetrics {
  std::uint64_t queries_completed = 0;
  std::uint64_t subqueries_processed = 0;
  std::uint64_t handoffs_initiated = 0;
  std::uint64_t cliques_replicated = 0;
  std::uint64_t cells_replicated = 0;
  std::uint64_t distress_rejections = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t guest_fallbacks = 0;
  std::uint64_t maintenance_tasks = 0;
  sim::SimTime total_maintenance_time = 0;
  // --- fault / degradation observability ---
  std::uint64_t node_crashes = 0;
  std::uint64_t node_restarts = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t timeouts_fired = 0;      // subquery + handoff timeouts
  std::uint64_t handoff_timeouts = 0;
  std::uint64_t subquery_retries = 0;
  std::uint64_t failovers = 0;
  std::uint64_t failed_subqueries = 0;
  std::uint64_t partial_queries = 0;
  // --- overload control & degraded answers ---
  std::uint64_t subqueries_shed = 0;       // admission-control rejections
  std::uint64_t subqueries_expired = 0;    // job deadline expired in a queue
  std::uint64_t degraded_subqueries = 0;   // answered from a coarser ancestor
  std::uint64_t degraded_queries = 0;      // >= 1 degraded partition
  std::uint64_t deadline_cut_subqueries = 0;  // cut by the query deadline
  std::uint64_t deadline_cut_queries = 0;     // finalized by the deadline timer
  std::uint64_t retries_suppressed = 0;    // denied by the retry budget
  // --- membership & anti-entropy recovery ---
  std::uint64_t gossip_probes = 0;        // SWIM pings sent, all observers
  std::uint64_t false_suspicions = 0;     // suspect -> alive refutations seen
  std::uint64_t partitions_observed = 0;  // PartitionEvents activated
  std::uint64_t digests_exchanged = 0;    // PLM digests received by recoverers
  std::uint64_t chunks_rewarmed = 0;      // complete chunks pulled back
  std::uint64_t cells_rewarmed = 0;       // cells carried by those chunks
  std::uint64_t recoveries = 0;           // anti-entropy rounds started
  // --- data integrity ---
  std::uint64_t integrity_checksum_failures = 0;  // storage scans hitting rot
  std::uint64_t blocks_quarantined = 0;     // distinct blocks quarantined
  std::uint64_t blocks_repaired = 0;        // quarantined blocks rewritten
  std::uint64_t frame_integrity_failures = 0;  // wire frames rejected
  std::uint64_t messages_redelivered = 0;   // corrupt frames retransmitted
  std::uint64_t poison_messages = 0;        // frames dropped after the budget
  std::uint64_t messages_corrupted = 0;     // link bit-flips injected
  std::uint64_t messages_truncated = 0;     // link truncations injected
  std::uint64_t corrupt_queries = 0;        // queries flagged by corrupt blocks
  std::uint64_t scrub_cycles = 0;           // scrubber ticks run
  std::uint64_t scrub_repairs = 0;          // blocks repaired by the scrubber
  std::uint64_t replica_divergences = 0;    // cached chunks dropped + re-pulled
  // --- elastic membership & ring rebalancing ---
  std::uint64_t rebalance_partitions_moved = 0;  // ownership flips completed
  std::uint64_t rebalance_transfers_aborted = 0; // warm transfers timed out
  std::uint64_t rebalance_ownership_reverts = 0; // moves undone (joiner died)
  std::uint64_t rebalance_epoch_advances = 0;    // ring epochs installed
};

class StashCluster {
 public:
  StashCluster(ClusterConfig config, std::shared_ptr<const NamGenerator> generator);

  [[nodiscard]] sim::EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] const sim::EventLoop& loop() const noexcept { return loop_; }
  [[nodiscard]] const ZeroHopDht& dht() const noexcept { return dht_; }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }
  /// Compatibility view over the registry's counters (built per call).
  [[nodiscard]] ClusterMetrics metrics() const;
  /// The registry behind metrics(): named counters, callback gauges over
  /// live cluster state, and latency histograms — exportable via
  /// obs::to_prometheus / obs::to_json.
  [[nodiscard]] obs::MetricsRegistry& metrics_registry() noexcept {
    return registry_;
  }
  [[nodiscard]] const obs::MetricsRegistry& metrics_registry() const noexcept {
    return registry_;
  }
  /// Per-query span traces (ring of config.trace_capacity).
  [[nodiscard]] const obs::Tracer& tracer() const noexcept { return tracer_; }
  [[nodiscard]] std::optional<obs::Trace> trace(std::uint64_t query_id) const {
    return tracer_.find(query_id);
  }

  using Callback = std::function<void(const QueryStats&)>;
  /// Completion callback that also receives the merged Cell payload (what
  /// the front-end renders).
  using RichCallback = std::function<void(const QueryStats&, CellSummaryMap&&)>;

  /// Submits a query at the current virtual time; `done` fires on
  /// completion.  Does not advance the loop.
  void submit(const AggregationQuery& query, Callback done);
  void submit(const AggregationQuery& query, RichCallback done);

  /// Submits one query and runs the loop to quiescence.  When `cells_out`
  /// is given it receives the merged Cell summaries.  All run_* helpers
  /// throw std::runtime_error if any query survives quiescence — a leaked
  /// Pending entry is a scatter/gather bug, never a silent return.
  QueryStats run_query(const AggregationQuery& query,
                       CellSummaryMap* cells_out = nullptr);

  /// Submits all queries at the current virtual time (a burst) and runs to
  /// quiescence; stats are returned in submission order.
  std::vector<QueryStats> run_burst(const std::vector<AggregationQuery>& queries);

  /// Submits queries one after another (each waits for the previous), as a
  /// single user's exploration session does; runs to quiescence.
  std::vector<QueryStats> run_sequence(const std::vector<AggregationQuery>& queries);

  /// Open-loop arrivals: query i is submitted at now + i * interarrival —
  /// the §VIII-E hotspot traffic shape — then runs to quiescence.
  std::vector<QueryStats> run_open_loop(
      const std::vector<AggregationQuery>& queries, sim::SimTime interarrival);

  // --- node introspection (tests, benches) ---
  [[nodiscard]] const StashGraph& node_graph(NodeId id) const;
  [[nodiscard]] const StashGraph& node_guest_graph(NodeId id) const;
  [[nodiscard]] const RoutingTable& node_routing(NodeId id) const;
  [[nodiscard]] std::size_t node_queue_length(NodeId id) const;
  [[nodiscard]] std::size_t total_cached_cells() const;
  [[nodiscard]] std::size_t total_guest_cells() const;

  /// Audits every node's local graph, guest graph, and routing table with
  /// the GraphAuditor (core/audit.hpp); violation details are prefixed with
  /// the node they came from.  `options.now` defaults to the loop's current
  /// virtual time so freshness timestamps are range-checked.
  [[nodiscard]] AuditReport audit_all(AuditOptions options = {}) const;

  /// Pre-populates every node's cache for the query (the Fig 6a best case)
  /// without going through the network path; returns cells inserted.
  std::size_t preload(const AggregationQuery& query);

  /// Drops all cached state (local and guest graphs, routing tables).
  void clear_caches();

  /// Invalidates one storage block cluster-wide (real-time update model).
  void invalidate_block(const std::string& partition, std::int64_t day);

  /// Real-time ingest (§IV-D): rewrites one block's contents on disk and
  /// invalidates every dependent cached chunk cluster-wide, so the next
  /// query recomputes fresh values.  Returns the block's new version.
  std::uint64_t ingest_update(const std::string& partition, std::int64_t day);

  // --- fault tolerance ---
  /// Fault-injection state (liveness, drop/latency dice, crash counters).
  [[nodiscard]] const sim::FaultInjector& faults() const noexcept { return fault_; }
  /// Is `node` currently up? (false only while a scripted crash is active)
  [[nodiscard]] bool node_alive(NodeId id) const { return fault_.alive(id); }
  /// Is `node` on the front-end's suspect list (circuit breaker open)?
  [[nodiscard]] bool node_suspected(NodeId id) const;
  /// Crashes / restarts a node immediately (outside any scripted plan).
  void crash_node(NodeId id);
  void restart_node(NodeId id);

  // --- membership & recovery ---
  /// The gossip failure detector (never null; inert when
  /// config.membership.enabled is false).
  [[nodiscard]] const GossipMembership& membership() const noexcept {
    return *membership_;
  }
  /// Front-end dispatchability: alive in the front-end's gossip view and
  /// not on the timeout circuit breaker.
  [[nodiscard]] bool reachable(NodeId id) const;
  /// Starts one anti-entropy recovery round for `id` now.  Also runs
  /// automatically on restart and partition heal when config.recovery.
  void recover_node(NodeId id);

  // --- elastic membership & ring rebalancing ---
  /// The currently installed ownership ring (epoch + sorted members).
  [[nodiscard]] const RingView& ring() const noexcept { return dht_.ring(); }
  /// Total addressable node slots (num_nodes, or max_nodes when elastic).
  [[nodiscard]] std::uint32_t total_slots() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  /// Scale out: admit standby slot `id` into the cluster.  It announces
  /// through gossip; once the front-end observes it stable the epoch
  /// advances and moved partitions are pulled onto it (old owners keep
  /// serving until each handoff flips).  Throws on a bad slot; a no-op for
  /// a slot that is already a member or already joining.
  void join_node(NodeId id);
  /// Scale in: gracefully decommission member `id`.  It keeps serving its
  /// partitions while the new owners pull warm state; when its last
  /// outbound move flips, it leaves via an explicit gossip rumor and its
  /// volatile state is wiped.  Throws on a bad slot; no-op if not a member.
  void decommission_node(NodeId id);
  /// The node currently answering for `partition`: the old owner while a
  /// rebalance move is in flight, the ring owner otherwise.  Queries racing
  /// an epoch flip are routed here, so exactly one side answers.
  [[nodiscard]] NodeId serving_owner(const std::string& partition) const;
  /// Any partition still mid-handoff, or any join/leave not yet reflected
  /// in an installed epoch?
  [[nodiscard]] bool rebalance_in_progress() const;
  /// Drives the loop in ring_check_interval slices until no rebalance is in
  /// progress (or `max_wait` virtual time elapses; returns true on quiet).
  /// The rebalance machinery is background traffic, which run-to-quiescence
  /// ignores — tests and drivers settle the ring through this instead.
  bool run_until_stable(sim::SimTime max_wait = 60 * sim::kSecond);

  // --- data integrity ---
  /// The shared durable block store (integrity introspection: quarantine
  /// list, checksum-failure counters).
  [[nodiscard]] const GalileoStore& store() const noexcept { return store_; }
  /// Injects bit-rot into one storage block immediately (outside any
  /// scripted plan) — the storage analogue of crash_node().
  void rot_block(const std::string& partition, std::int64_t day);
  /// Runs one scrubber pass right now (verify + repair + one anti-entropy
  /// walk), regardless of config.scrub_interval.
  void scrub_now();

 private:
  struct Node {
    NodeId id;
    StashGraph graph;
    StashGraph guest_graph;
    QueryEngine engine;
    QueryEngine guest_engine;
    /// Wall-clock parallel datapath over the same graph+store (set when
    /// ClusterConfig::exec_threads > 0).  The serve and maintenance paths
    /// route through it so graph reads/writes stay under its RwSpinlock.
    std::unique_ptr<exec::ParallelQueryEngine> exec_engine;
    RoutingTable routing;
    sim::SimServer server;
    sim::SimServer maintenance;
    sim::SimTime last_handoff;
    sim::SimTime last_handoff_attempt;
    Rng rng;

    Node(NodeId node_id, const StashConfig& stash_config,
         const GalileoStore& store, sim::EventLoop& loop,
         const sim::SimServer::Config& server_config, std::uint64_t seed);
  };

  /// One scattered subquery's lifecycle across attempts.  Responses and
  /// timeouts are tagged with the attempt number they belong to, so a slow
  /// reply from a superseded attempt can never double-deliver.
  struct Subquery {
    std::string partition;
    NodeId target = 0;                 // node serving the current attempt
    std::optional<NodeId> forwarded_to;  // guest helper, when rerouted
    int attempts = 0;
    sim::EventLoop::EventId timeout = 0;
    bool done = false;
    obs::SpanId span = obs::kNoSpan;          // "subquery <partition>"
    obs::SpanId attempt_span = obs::kNoSpan;  // current "attempt <n>"
  };

  struct Pending {
    AggregationQuery query;
    Callback done;
    RichCallback done_rich;
    std::size_t remaining = 0;
    QueryStats stats;
    CellSummaryMap cells;
    std::vector<Subquery> subqueries;
    /// Absolute deadline (0 = none); mirrored in stats.deadline.
    sim::SimTime deadline = 0;
    /// Fires on_query_deadline at `deadline`; cancelled on early finish.
    sim::EventLoop::EventId deadline_timer = 0;
    /// Remaining retry tokens (config.retry_budget at submit; refilled by
    /// exact responses).  Unused when the budget is 0 (unlimited).
    double retry_tokens = 0.0;
    obs::SpanId root_span = obs::kNoSpan;
    obs::SpanId scatter_span = obs::kNoSpan;
    obs::SpanId merge_span = obs::kNoSpan;
  };

  /// Registry-backed counters, bound once at construction so hot-path
  /// increments never touch the registry lock.  Field-for-field mirror of
  /// the ClusterMetrics compatibility struct.
  struct Counters {
    explicit Counters(obs::MetricsRegistry& reg);
    obs::Counter& queries_completed;
    obs::Counter& subqueries_processed;
    obs::Counter& handoffs_initiated;
    obs::Counter& cliques_replicated;
    obs::Counter& cells_replicated;
    obs::Counter& distress_rejections;
    obs::Counter& reroutes;
    obs::Counter& guest_fallbacks;
    obs::Counter& maintenance_tasks;
    obs::Counter& maintenance_time_us;
    obs::Counter& node_crashes;
    obs::Counter& node_restarts;
    obs::Counter& messages_dropped;
    obs::Counter& timeouts_fired;
    obs::Counter& handoff_timeouts;
    obs::Counter& subquery_retries;
    obs::Counter& failovers;
    obs::Counter& failed_subqueries;
    obs::Counter& partial_queries;
    obs::Counter& subqueries_shed;
    obs::Counter& subqueries_expired;
    obs::Counter& degraded_subqueries;
    obs::Counter& degraded_queries;
    obs::Counter& deadline_cut_subqueries;
    obs::Counter& deadline_cut_queries;
    obs::Counter& retries_suppressed;
    obs::Counter& digests_exchanged;
    obs::Counter& chunks_rewarmed;
    obs::Counter& cells_rewarmed;
    obs::Counter& recoveries;
    obs::Counter& frame_integrity_failures;
    obs::Counter& messages_redelivered;
    obs::Counter& poison_messages;
    obs::Counter& corrupt_queries;
    obs::Counter& scrub_cycles;
    obs::Counter& scrub_repairs;
    obs::Counter& replica_divergences;
    obs::Counter& rebalance_partitions_moved;
    obs::Counter& rebalance_transfers_aborted;
    obs::Counter& rebalance_ownership_reverts;
    obs::Counter& rebalance_epoch_advances;
  };

  /// One entry of an anti-entropy digest: "I hold (res, chunk) complete,
  /// with this PLM bitmap hash".
  struct DigestEntry {
    Resolution res;
    ChunkKey chunk;
    std::uint64_t hash = 0;
  };

  /// One in-flight rebalance handoff: partition ownership moved from ->
  /// to at `epoch`, but routing still points at `from` (the handoff record
  /// — erasing the entry IS the atomic flip).  Transfer messages carry
  /// (epoch, attempt); anything stale is dropped on arrival.
  struct Move {
    NodeId from = 0;
    NodeId to = 0;
    std::uint64_t epoch = 0;
    int attempt = 0;
    sim::EventLoop::EventId deadline_timer = 0;
  };

  void submit_impl(const AggregationQuery& query, Callback done,
                   RichCallback done_rich);
  /// Starts the next attempt of a subquery: picks a target (failing over
  /// past suspected nodes), arms the timeout, and sends the request.
  void start_attempt(std::uint64_t query_id, std::size_t idx);
  void on_subquery_timeout(std::uint64_t query_id, std::size_t idx, int attempt);
  /// Shared failure path for timeouts, NACKed pushbacks, and drops: ends
  /// the attempt, then either schedules a retry (deadline- and
  /// budget-gated) or fails the subquery.
  void handle_attempt_failure(std::uint64_t query_id, std::size_t idx,
                              int attempt, const char* reason,
                              bool suspect_target);
  /// A node server refused or lost a job (shed / expired / dropped):
  /// degrade from its cached ancestors, or NACK back to the front-end.
  void handle_server_pushback(NodeId node_id, std::uint64_t query_id,
                              std::size_t idx, int attempt,
                              sim::Outcome outcome, bool guest);
  /// Front-end receipt of a degraded (coarser-resolution) answer.
  void deliver_degraded(std::uint64_t query_id, std::size_t idx, int attempt,
                        const std::shared_ptr<DegradedEvaluation>& deg,
                        const char* cause);
  /// Deadline timer: cuts every unfinished subquery and finalizes the
  /// query with whatever has arrived, exactly at the deadline.
  void on_query_deadline(std::uint64_t query_id);
  /// Erases the Pending entry, stamps stats, fires callbacks.
  void finalize_query(std::uint64_t query_id);
  /// Backoff before attempt `attempts`+1: exponential, clamped at
  /// max_retry_backoff, jittered from the front-end Rng.
  [[nodiscard]] sim::SimTime retry_delay(int attempts);
  void fail_subquery(std::uint64_t query_id, std::size_t idx);
  void route_subquery(std::uint64_t query_id, std::size_t idx, int attempt,
                      NodeId target, bool allow_reroute);
  void enqueue_local(NodeId node_id, std::uint64_t query_id, std::size_t idx,
                     int attempt);
  void enqueue_guest(NodeId helper_id, NodeId owner_id, std::uint64_t query_id,
                     std::size_t idx, int attempt);
  void deliver_response(std::uint64_t query_id, std::size_t idx, int attempt,
                        Evaluation&& eval);
  /// Gather step shared by success and failure: decrements `remaining` and
  /// schedules the front-end merge when the scatter has fully drained.
  void complete_subquery(std::uint64_t query_id);
  void maybe_start_handoff(NodeId node_id);
  void send_distress(NodeId hot_id, Clique clique, int attempt);
  /// Sends one message over the (faulty) network: rolls the drop dice,
  /// adds link latency, and delivers only if the destination is alive.
  /// Background messages (gossip) interleave in time order but never keep
  /// the loop's run-to-quiescence alive.
  void send_message(std::uint32_t from, std::uint32_t to, std::size_t bytes,
                    std::function<void()> deliver, bool background = false);
  /// Sends a checksummed frame over the (faulty, now also corrupting)
  /// network.  The fault injector may flip a bit or tear the wire copy;
  /// the receiver validates the frame and hands `deliver` the verified
  /// payload bytes.  A frame failing validation is NACKed back and
  /// retransmitted from the sender's pristine copy up to
  /// `redeliveries_left` times; after that it is a poison message —
  /// counted and dropped, never parsed, never crashing the receiver.
  void send_frame(std::uint32_t from, std::uint32_t to,
                  std::vector<std::uint8_t> frame,
                  std::function<void(std::vector<std::uint8_t>&&)> deliver,
                  bool background, int redeliveries_left);
  /// One scrubber pass: storage verify + repair, then one round-robin
  /// anti-entropy digest walk.  Self-reschedules when scrub_interval > 0.
  void scrub_tick(bool reschedule);
  /// One anti-entropy round: drops unusable routing entries, then digest
  /// exchange + chunk pull against replica-holding ring successors.
  void start_recovery(NodeId id);
  /// Complete-chunk digest of `holder`'s graphs (local + guest) restricted
  /// to the partitions `owner` owns — the anti-entropy comparison unit.
  [[nodiscard]] std::vector<DigestEntry> recovery_digest(NodeId holder,
                                                         NodeId owner) const;
  /// Same digest restricted to one partition (the rebalance transfer unit).
  [[nodiscard]] std::vector<DigestEntry> partition_digest(
      NodeId holder, const std::string& partition) const;
  // --- elastic membership & ring rebalancing ---
  /// Arms the ring watcher (and autoscaler, if enabled) exactly once.
  /// Called from the ctor for elastic configs, and lazily from
  /// join_node/decommission_node so programmatic scaling works on a
  /// cluster that was constructed fixed-size.
  void ensure_elastic();
  /// Front-end ring watcher tick: computes the desired member set, waits
  /// for it to hold stable (ring_stabilize_delay), then advances the epoch.
  void ring_watch_tick();
  /// Desired ring = current members, minus leavers and crashed joiners,
  /// plus joiners the front-end's gossip view believes alive.
  [[nodiscard]] std::vector<NodeId> desired_ring_members() const;
  /// Installs `members` as a new epoch and (re)plans one Move per
  /// partition whose serving owner changes; supersedes any in-flight moves.
  void advance_epoch(std::vector<NodeId> members);
  /// Starts (or retries) the warm transfer for one moved partition: the
  /// new owner pulls complete chunks from a live donor over the
  /// anti-entropy digest/pull path, then reports done to the front-end.
  void start_move(const std::string& partition);
  /// Transfer deadline: aborts the attempt and retries, or flips cold
  /// after rebalance_max_attempts.
  void on_move_deadline(const std::string& partition, std::uint64_t epoch,
                        int attempt);
  /// Front-end receipt of a completed transfer: the atomic flip.
  void complete_move(const std::string& partition, std::uint64_t epoch,
                     int attempt);
  /// Stale-transfer guard: is this (partition, epoch, attempt) still the
  /// live move?  Every transfer continuation checks before acting.
  [[nodiscard]] bool move_current(const std::string& partition,
                                  std::uint64_t epoch, int attempt) const;
  /// Shared flip bookkeeping (warm or cold): erase the handoff record,
  /// count it, and settle any decommission/join waiting on it.
  void flip_move(const std::string& partition);
  /// A decommissioning member's last outbound move flipped: gossip the
  /// explicit departure, wipe it, and drop routing entries to it.
  void maybe_finish_decommission(NodeId id);
  /// Crash handler hook: a joiner died mid-rebalance — revert its inbound
  /// moves to their old owners and let the watcher advance past it.
  void handle_elastic_crash(NodeId id);
  /// Autoscaler tick: watermark + hysteresis + cooldown over PR-3 metrics.
  void autoscale_tick();
  [[nodiscard]] bool suspected(NodeId id) const;
  void suspect(NodeId id);
  void absolve(NodeId id);
  void wipe_node(NodeId id);  // crash handler: volatile state only
  /// Throws if a Pending entry survived quiescence (satellite guard).
  void check_quiescence() const;
  [[nodiscard]] sim::SimTime service_time(const EvalBreakdown& b) const;
  [[nodiscard]] sim::SimTime maintenance_time(const MaintenanceStats& m) const;
  [[nodiscard]] std::vector<ChunkKey> subquery_chunks(
      const AggregationQuery& query, const std::string& partition) const;
  /// Registers the callback gauges/counters computed over live node state
  /// (cached cells, queue lengths, per-node graph stats) at snapshot time.
  void register_callback_metrics();
  /// Records the "serve" span and its dispatch/cache-probe/disk/roll-up/
  /// merge children for one executed subquery attempt.  The children
  /// partition [end - service_time(b), end] exactly (tests rely on it).
  void record_serve_spans(std::uint64_t query_id, obs::SpanId parent,
                          NodeId node_id, const EvalBreakdown& b, bool guest);

  ClusterConfig config_;
  sim::EventLoop loop_;
  ZeroHopDht dht_;
  sim::FaultInjector fault_;
  std::shared_ptr<const NamGenerator> generator_;
  GalileoStore store_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  /// Per-node circuit breaker: while now < suspect_until the front-end
  /// routes around the node instead of paying the timeout again.
  std::vector<sim::SimTime> suspect_until_;
  /// SWIM gossip views (constructed in the ctor body so its transport can
  /// capture `this`).
  std::unique_ptr<GossipMembership> membership_;
  /// Last anti-entropy round per node (recovery_cooldown gate).
  std::vector<sim::SimTime> last_recovery_;
  /// Messages offered to the network; STASH_AUDIT asserts the fault
  /// injector rolled its drop dice exactly once for each.
  std::uint64_t messages_sent_ = 0;
  Rng frontend_rng_;  // retry jitter only: node Rngs stay untouched
  // --- elastic membership & ring rebalancing state (front-end owned) ---
  /// True when any elastic machinery is active (standby slots, a scripted
  /// join/decommission, or the autoscaler).  False keeps legacy runs
  /// bit-identical: no watcher ticks, no extra dice, no behavior change.
  bool elastic_ = false;
  /// Set by ensure_elastic(): the watcher/autoscaler timers are armed.
  bool elastic_armed_ = false;
  /// In-flight handoffs keyed by partition.  Presence == routing still
  /// points at Move::from; erasure == the flip.  Only unflipped moves live
  /// here, so serving_owner() is one hash probe.
  std::unordered_map<std::string, Move> moves_;
  /// Slots admitted but still receiving their first inbound transfers.  A
  /// crash while in this set reverts the join instead of failing over.
  std::unordered_set<NodeId> joining_;
  /// Members draining outbound moves before their explicit gossip leave.
  std::unordered_set<NodeId> leaving_;
  /// Ring-watcher debounce: the candidate member set and when it was first
  /// observed (epoch advances only after ring_stabilize_delay of stability).
  std::vector<NodeId> ring_candidate_;
  sim::SimTime ring_candidate_since_ = 0;
  // Autoscaler hysteresis state.
  int autoscale_high_ticks_ = 0;
  int autoscale_low_ticks_ = 0;
  sim::SimTime autoscale_last_action_ = std::numeric_limits<sim::SimTime>::min() / 2;
  std::uint64_t autoscale_prev_shed_ = 0;
  /// Queue high-water mark already accounted for by a previous evaluation
  /// tick: only *growth* past it counts as fresh overload pressure.
  std::size_t autoscale_prev_peak_ = 0;
  /// Next node the scrubber's anti-entropy walk visits (round-robin).
  std::uint32_t scrub_cursor_ = 0;
  std::uint64_t next_query_id_ = 0;
  obs::MetricsRegistry registry_;
  obs::Tracer tracer_;
  Counters counters_;
  obs::Histogram& query_latency_us_;
  obs::Histogram& subquery_service_us_;
  obs::Histogram& maintenance_service_us_;
};

}  // namespace stash::cluster
