// The simulated STASH cluster (paper §VI, §VII, §VIII-A).
//
// Assembles the full system: a 120-node (configurable) cluster where each
// node runs a Galileo block store, a local STASH graph + guest graph, a
// query engine, a routing table, and an 8-worker request server — all on a
// shared deterministic event loop.  A front-end splits each user query
// into per-partition subqueries (scatter), routes them over the zero-hop
// DHT, and merges the Cell summaries (gather).
//
// Hotspot autoscaling (§VII) runs exactly the paper's protocol: pending-
// queue threshold detection, top-Clique selection, antipode helper search
// with Distress/Ack, Replication Request/Response, routing-table
// population, probabilistic rerouting, cooldown, and TTL purging.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/clique.hpp"
#include "core/query_engine.hpp"
#include "core/routing_table.hpp"
#include "dht/partitioner.hpp"
#include "sim/cost_model.hpp"
#include "sim/event_loop.hpp"
#include "sim/server.hpp"

namespace stash::cluster {

enum class SystemMode {
  Basic,                // plain Galileo: every query scans disk
  Stash,                // full STASH: caching + dynamic replication
  StashNoReplication,   // STASH caching without hotspot handoff (Fig 6d base)
};

/// Where a hotspotted node looks for Clique helpers (§VII-B.3 vs the
/// nearby-replication strategy of related work [17] — kept for ablation).
enum class HelperPolicy {
  Antipode,   // node owning the diametrically opposite region (the paper)
  Neighbor,   // node owning a lateral neighbor region of the hot Clique
};

struct ClusterConfig {
  std::uint32_t num_nodes = 120;       // §VIII-A testbed size
  int workers_per_node = 8;            // 8-core Xeon per node
  int partition_prefix_length = 2;     // first 2 geohash characters
  SystemMode mode = SystemMode::Stash;
  StashConfig stash;
  sim::CostModel cost;
  std::uint64_t seed = 0x5354415348ULL;

  // Message sizing for the network cost model.
  std::size_t request_bytes = 256;
  std::size_t response_cell_bytes = 12;   // cell id + requested aggregate
  // (Replication transfers are sized from the real wire codec, not a
  // per-cell constant — see send_distress.)
  /// Front-end parse/render overhead added to every query's latency.
  sim::SimTime frontend_overhead = 1 * sim::kMillisecond;
  /// Per-subquery fixed server-side overhead (dispatch, deserialize).
  sim::SimTime subquery_overhead = 200;   // 0.2 ms
  /// Attempts to find a helper around the antipode before giving up.
  int antipode_retries = 8;
  HelperPolicy helper_policy = HelperPolicy::Antipode;
  /// Throughput-bench mode: count result Cells but do not retain their
  /// summaries at the front-end (bounds memory for 10k-query bursts).
  bool discard_payload = false;
};

struct QueryStats {
  sim::SimTime submitted_at = 0;
  sim::SimTime completed_at = 0;
  std::size_t result_cells = 0;
  std::size_t subqueries = 0;
  std::size_t rerouted_subqueries = 0;
  EvalBreakdown breakdown;  // summed over subqueries

  [[nodiscard]] sim::SimTime latency() const noexcept {
    return completed_at - submitted_at;
  }
};

struct ClusterMetrics {
  std::uint64_t queries_completed = 0;
  std::uint64_t subqueries_processed = 0;
  std::uint64_t handoffs_initiated = 0;
  std::uint64_t cliques_replicated = 0;
  std::uint64_t cells_replicated = 0;
  std::uint64_t distress_rejections = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t guest_fallbacks = 0;
  std::uint64_t maintenance_tasks = 0;
  sim::SimTime total_maintenance_time = 0;
};

class StashCluster {
 public:
  StashCluster(ClusterConfig config, std::shared_ptr<const NamGenerator> generator);

  [[nodiscard]] sim::EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] const ZeroHopDht& dht() const noexcept { return dht_; }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }
  [[nodiscard]] const ClusterMetrics& metrics() const noexcept { return metrics_; }

  using Callback = std::function<void(const QueryStats&)>;
  /// Completion callback that also receives the merged Cell payload (what
  /// the front-end renders).
  using RichCallback = std::function<void(const QueryStats&, CellSummaryMap&&)>;

  /// Submits a query at the current virtual time; `done` fires on
  /// completion.  Does not advance the loop.
  void submit(const AggregationQuery& query, Callback done);
  void submit(const AggregationQuery& query, RichCallback done);

  /// Submits one query and runs the loop to quiescence.  When `cells_out`
  /// is given it receives the merged Cell summaries.
  QueryStats run_query(const AggregationQuery& query,
                       CellSummaryMap* cells_out = nullptr);

  /// Submits all queries at the current virtual time (a burst) and runs to
  /// quiescence; stats are returned in submission order.
  std::vector<QueryStats> run_burst(const std::vector<AggregationQuery>& queries);

  /// Submits queries one after another (each waits for the previous), as a
  /// single user's exploration session does; runs to quiescence.
  std::vector<QueryStats> run_sequence(const std::vector<AggregationQuery>& queries);

  /// Open-loop arrivals: query i is submitted at now + i * interarrival —
  /// the §VIII-E hotspot traffic shape — then runs to quiescence.
  std::vector<QueryStats> run_open_loop(
      const std::vector<AggregationQuery>& queries, sim::SimTime interarrival);

  // --- node introspection (tests, benches) ---
  [[nodiscard]] const StashGraph& node_graph(NodeId id) const;
  [[nodiscard]] const StashGraph& node_guest_graph(NodeId id) const;
  [[nodiscard]] const RoutingTable& node_routing(NodeId id) const;
  [[nodiscard]] std::size_t node_queue_length(NodeId id) const;
  [[nodiscard]] std::size_t total_cached_cells() const;
  [[nodiscard]] std::size_t total_guest_cells() const;

  /// Pre-populates every node's cache for the query (the Fig 6a best case)
  /// without going through the network path; returns cells inserted.
  std::size_t preload(const AggregationQuery& query);

  /// Drops all cached state (local and guest graphs, routing tables).
  void clear_caches();

  /// Invalidates one storage block cluster-wide (real-time update model).
  void invalidate_block(const std::string& partition, std::int64_t day);

  /// Real-time ingest (§IV-D): rewrites one block's contents on disk and
  /// invalidates every dependent cached chunk cluster-wide, so the next
  /// query recomputes fresh values.  Returns the block's new version.
  std::uint64_t ingest_update(const std::string& partition, std::int64_t day);

 private:
  struct Node {
    NodeId id;
    StashGraph graph;
    StashGraph guest_graph;
    QueryEngine engine;
    QueryEngine guest_engine;
    RoutingTable routing;
    sim::SimServer server;
    sim::SimServer maintenance;
    sim::SimTime last_handoff;
    sim::SimTime last_handoff_attempt;
    Rng rng;

    Node(NodeId node_id, const StashConfig& stash_config,
         const GalileoStore& store, sim::EventLoop& loop, int workers,
         std::uint64_t seed);
  };

  struct Pending {
    AggregationQuery query;
    Callback done;
    RichCallback done_rich;
    std::size_t remaining = 0;
    QueryStats stats;
    CellSummaryMap cells;
  };

  void submit_impl(const AggregationQuery& query, Callback done,
                   RichCallback done_rich);
  void route_subquery(std::uint64_t query_id, const std::string& partition,
                      bool allow_reroute);
  void enqueue_local(NodeId node_id, std::uint64_t query_id,
                     const std::string& partition);
  void enqueue_guest(NodeId helper_id, NodeId owner_id, std::uint64_t query_id,
                     const std::string& partition);
  void deliver_response(std::uint64_t query_id, Evaluation&& eval);
  void maybe_start_handoff(NodeId node_id);
  void send_distress(NodeId hot_id, Clique clique, int attempt);
  [[nodiscard]] sim::SimTime service_time(const EvalBreakdown& b) const;
  [[nodiscard]] sim::SimTime maintenance_time(const MaintenanceStats& m) const;
  [[nodiscard]] std::vector<ChunkKey> subquery_chunks(
      const AggregationQuery& query, const std::string& partition) const;

  ClusterConfig config_;
  sim::EventLoop loop_;
  ZeroHopDht dht_;
  std::shared_ptr<const NamGenerator> generator_;
  GalileoStore store_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_query_id_ = 0;
  ClusterMetrics metrics_;
};

}  // namespace stash::cluster
