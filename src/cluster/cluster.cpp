#include "cluster/cluster.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

#include "common/codec.hpp"
#include "exec/host_clock.hpp"

namespace stash::cluster {

namespace {
constexpr sim::SimTime kNeverSuspected =
    std::numeric_limits<sim::SimTime>::min();
constexpr std::size_t kAckBytes = 64;  // Ack / NACK / Replication Response
}  // namespace

StashCluster::Node::Node(NodeId node_id, const StashConfig& stash_config,
                         const GalileoStore& store, sim::EventLoop& loop,
                         const sim::SimServer::Config& server_config,
                         std::uint64_t seed)
    : id(node_id),
      graph(stash_config),
      guest_graph(stash_config),
      engine(graph, store),
      guest_engine(guest_graph, store),
      server(loop, server_config),
      maintenance(loop, 1),  // the paper's "separate thread" for population
      last_handoff(std::numeric_limits<sim::SimTime>::min() / 2),
      last_handoff_attempt(std::numeric_limits<sim::SimTime>::min() / 2),
      rng(seed) {}

StashCluster::Counters::Counters(obs::MetricsRegistry& reg)
    : queries_completed(reg.counter("stash_queries_completed_total",
                                    "Queries completed (including partial)")),
      subqueries_processed(reg.counter("stash_subqueries_processed_total",
                                       "Subqueries executed by node servers")),
      handoffs_initiated(reg.counter("stash_handoffs_initiated_total",
                                     "Hotspot handoff rounds started")),
      cliques_replicated(reg.counter("stash_cliques_replicated_total",
                                     "Cliques installed on helper nodes")),
      cells_replicated(reg.counter("stash_cells_replicated_total",
                                   "Cells shipped in replication payloads")),
      distress_rejections(reg.counter("stash_distress_rejections_total",
                                      "Distress requests NACKed or abandoned")),
      reroutes(reg.counter("stash_reroutes_total",
                           "Subqueries rerouted to a guest helper")),
      guest_fallbacks(reg.counter(
          "stash_guest_fallbacks_total",
          "Guest-served subqueries that fell back to the owner")),
      maintenance_tasks(reg.counter("stash_maintenance_tasks_total",
                                    "Background graph-population tasks run")),
      maintenance_time_us(reg.counter(
          "stash_maintenance_time_us_total",
          "Simulated microseconds spent in background maintenance")),
      node_crashes(reg.counter("stash_node_crashes_total",
                               "Node crashes (scripted or forced)")),
      node_restarts(reg.counter("stash_node_restarts_total", "Node restarts")),
      messages_dropped(reg.counter("stash_messages_dropped_total",
                                   "Messages lost by fault injection")),
      timeouts_fired(reg.counter("stash_timeouts_total",
                                 "Subquery and handoff timeouts fired")),
      handoff_timeouts(reg.counter("stash_handoff_timeouts_total",
                                   "Handoff watchdog expirations")),
      subquery_retries(reg.counter("stash_subquery_retries_total",
                                   "Subquery retry attempts issued")),
      failovers(reg.counter("stash_failovers_total",
                            "Subqueries served by a DHT successor")),
      failed_subqueries(reg.counter("stash_failed_subqueries_total",
                                    "Subqueries that exhausted every attempt")),
      partial_queries(reg.counter("stash_partial_queries_total",
                                  "Queries completed with missing partitions")),
      subqueries_shed(reg.counter(
          "stash_subqueries_shed_total",
          "Subquery jobs rejected by node admission control")),
      subqueries_expired(reg.counter(
          "stash_subqueries_expired_total",
          "Subquery jobs whose deadline expired in a node queue")),
      degraded_subqueries(reg.counter(
          "stash_degraded_subqueries_total",
          "Subqueries answered from a cached coarser ancestor level")),
      degraded_queries(reg.counter(
          "stash_degraded_queries_total",
          "Queries completed with at least one degraded partition")),
      deadline_cut_subqueries(reg.counter(
          "stash_deadline_cut_subqueries_total",
          "Subqueries cut off when their query deadline fired")),
      deadline_cut_queries(reg.counter(
          "stash_deadline_cut_queries_total",
          "Queries finalized by the deadline timer")),
      retries_suppressed(reg.counter(
          "stash_retries_suppressed_total",
          "Retries denied by an exhausted per-query retry budget")),
      digests_exchanged(reg.counter(
          "stash_digests_exchanged_total",
          "PLM digests received by recovering nodes (anti-entropy)")),
      chunks_rewarmed(reg.counter(
          "stash_chunks_rewarmed_total",
          "Complete chunks pulled back into a rejoining node's cache")),
      cells_rewarmed(reg.counter(
          "stash_cells_rewarmed_total",
          "Cells carried by anti-entropy re-warm payloads")),
      recoveries(reg.counter("stash_recoveries_total",
                             "Anti-entropy recovery rounds started")),
      frame_integrity_failures(reg.counter(
          "stash_frame_integrity_failures_total",
          "Wire frames rejected by magic/length/checksum validation")),
      messages_redelivered(reg.counter(
          "stash_messages_redelivered_total",
          "Corrupt frames NACKed and retransmitted from the sender")),
      poison_messages(reg.counter(
          "stash_poison_messages_total",
          "Frames still corrupt after the redelivery budget (dropped)")),
      corrupt_queries(reg.counter(
          "stash_corrupt_queries_total",
          "Queries flagged partial because a scanned block failed its "
          "checksum")),
      scrub_cycles(reg.counter("stash_scrub_cycles_total",
                               "Background scrubber passes run")),
      scrub_repairs(reg.counter(
          "stash_scrub_repairs_total",
          "Quarantined blocks rewritten from pristine data by the scrubber")),
      replica_divergences(reg.counter(
          "stash_replica_divergences_total",
          "Cached chunks dropped and re-pulled after an anti-entropy digest "
          "mismatch")),
      rebalance_partitions_moved(reg.counter(
          "stash_rebalance_partitions_moved_total",
          "Partition ownership flips completed by ring rebalancing")),
      rebalance_transfers_aborted(reg.counter(
          "stash_rebalance_transfers_aborted_total",
          "Warm rebalance transfer attempts that timed out or failed")),
      rebalance_ownership_reverts(reg.counter(
          "stash_rebalance_ownership_reverts_total",
          "Rebalance moves reverted to the old owner (target died mid-join)")),
      rebalance_epoch_advances(reg.counter(
          "stash_rebalance_epoch_advances_total",
          "Membership ring epochs installed by the front-end")) {}

StashCluster::StashCluster(ClusterConfig config,
                           std::shared_ptr<const NamGenerator> generator)
    : config_(config),
      dht_(config.num_nodes, config.partition_prefix_length),
      // Slots beyond num_nodes are elastic standbys: addressable by the
      // fault plan and the network, but outside the ring until they join.
      fault_(config.fault_plan, std::max(config.num_nodes, config.max_nodes)),
      generator_(std::move(generator)),
      store_(generator_, config.partition_prefix_length),
      suspect_until_(std::max(config.num_nodes, config.max_nodes),
                     kNeverSuspected),
      last_recovery_(std::max(config.num_nodes, config.max_nodes),
                     std::numeric_limits<sim::SimTime>::min() / 2),
      frontend_rng_(config.seed ^ 0x46524f4e54ULL),
      tracer_(config.tracing, config.trace_capacity),
      counters_(registry_),
      query_latency_us_(registry_.histogram(
          "stash_query_latency_us", "End-to-end query latency (simulated us)",
          obs::latency_buckets_us())),
      subquery_service_us_(registry_.histogram(
          "stash_subquery_service_us",
          "Per-subquery server service time (simulated us)",
          obs::latency_buckets_us())),
      maintenance_service_us_(registry_.histogram(
          "stash_maintenance_service_us",
          "Background maintenance task duration (simulated us)",
          obs::latency_buckets_us())) {
  if (!generator_) throw std::invalid_argument("StashCluster: null generator");
  if (config_.max_nodes != 0 && config_.max_nodes < config_.num_nodes)
    throw std::invalid_argument("StashCluster: max_nodes < num_nodes");
  const std::uint32_t slots = std::max(config_.num_nodes, config_.max_nodes);
  elastic_ = config_.max_nodes > config_.num_nodes ||
             !config_.fault_plan.joins.empty() ||
             !config_.fault_plan.decommissions.empty() ||
             config_.autoscale.enabled;
  store_.set_verify_checksums(config_.verify_checksums);
  // Validate scripted bit-rot targets eagerly: a bad partition key should
  // fail construction, not throw from inside the event loop at fire time.
  for (const auto& event : config_.fault_plan.bitrot) {
    if (event.partition.size() !=
        static_cast<std::size_t>(config_.partition_prefix_length))
      throw std::invalid_argument(
          "StashCluster: bit-rot partition key length != partition prefix");
    if (!geohash::is_valid(event.partition))
      throw std::invalid_argument(
          "StashCluster: bit-rot partition is not a valid geohash");
  }
  nodes_.reserve(slots);
  const sim::SimServer::Config server_config{
      config_.workers_per_node, config_.queue_limit, config_.admission_policy};
  for (NodeId id = 0; id < slots; ++id)
    nodes_.push_back(std::make_unique<Node>(id, config_.stash, store_, loop_,
                                            server_config,
                                            config_.seed ^ mix64(id)));
  if (config_.exec_threads > 0) {
    // Wall-clock datapath: every node shards its chunk work across a real
    // thread pool.  Answers stay byte-identical to the inline engine, so
    // the sim remains deterministic for a fixed seed.
    exec::ExecConfig exec_config;
    exec_config.threads = config_.exec_threads;
    exec_config.queue_capacity = config_.exec_queue_capacity;
    exec_config.faults = config_.exec_faults;
    for (auto& node : nodes_)
      node->exec_engine = std::make_unique<exec::ParallelQueryEngine>(
          node->graph, store_, exec_config);
  }
  // Gossip rides the normal (faulty) message path as background traffic:
  // subject to the same drops/partitions/latency as queries, but never
  // keeping run-to-quiescence alive.
  membership_ = std::make_unique<GossipMembership>(
      config_.membership, slots, loop_,
      [this](std::uint32_t from, std::uint32_t to, std::size_t bytes,
             std::function<void()> deliver) {
        send_message(from, to, bytes, std::move(deliver), /*background=*/true);
      },
      [this](std::uint32_t node) { return fault_.alive(node); },
      /*initial_members=*/config_.num_nodes);
  membership_->set_state_handler(
      [this](std::uint32_t observer, std::uint32_t node, MemberState state) {
        // Stale-replica fix: the moment a node's own view declares a peer
        // dead (or learns it left), routing entries pointing at that peer
        // are invalidated, so no subquery is ever forwarded to a host known
        // to be gone.
        if ((state == MemberState::kDead || state == MemberState::kLeft) &&
            observer != sim::kFrontendNode && fault_.alive(observer))
          nodes_[observer]->routing.drop_helper(node);
      });
  register_callback_metrics();
  // Crash wipes volatile state only — the Galileo store survives, so any
  // node (the owner after restart, or a failover successor) can rebuild
  // answers from disk.  This is the paper's volatile-cache/durable-store
  // split made executable.
  fault_.set_crash_handler([this](std::uint32_t id) {
    wipe_node(id);
    membership_->reset_view(id);  // its beliefs were volatile state too
    counters_.node_crashes.inc();
    if (elastic_) handle_elastic_crash(id);
  });
  fault_.set_restart_handler([this](std::uint32_t id) {
    counters_.node_restarts.inc();
    // Rejoin with a bumped incarnation: overrides any rumor of this
    // node's death everywhere it has spread.
    membership_->announce(id);
    if (config_.recovery) start_recovery(id);
  });
  fault_.set_heal_handler([this](const sim::PartitionEvent& event) {
    // Every healed node re-announces for fast view convergence; the
    // groups cut off from the front-end additionally re-warm their caches
    // from the replicas that served their partitions meanwhile.
    for (const auto& group : event.groups) {
      const bool had_frontend =
          std::find(group.begin(), group.end(), sim::kFrontendNode) !=
          group.end();
      for (const std::uint32_t id : group) {
        if (id == sim::kFrontendNode || !fault_.alive(id)) continue;
        membership_->announce(id);
        if (config_.recovery && !had_frontend) start_recovery(id);
      }
    }
  });
  fault_.set_bitrot_handler([this](const sim::BitRotEvent& event) {
    store_.rot_block(BlockKey{event.partition, event.day});
  });
  fault_.set_join_handler([this](std::uint32_t id) { join_node(id); });
  fault_.set_decommission_handler(
      [this](std::uint32_t id) { decommission_node(id); });
  fault_.arm(loop_);
  membership_->start();
  // Ring watcher + autoscaler run only when something elastic can happen,
  // so fixed-size runs stay bit-identical to the pre-elastic cluster.
  if (elastic_) ensure_elastic();
  // Background scrubber: detect -> quarantine -> repair without waiting
  // for a query to trip over the rot.  Background scheduling means an idle
  // cluster still quiesces.
  if (config_.scrub_interval > 0)
    loop_.schedule_background(config_.scrub_interval,
                              [this] { scrub_tick(/*reschedule=*/true); });
}

void StashCluster::rot_block(const std::string& partition, std::int64_t day) {
  store_.rot_block(BlockKey{partition, day});
}

void StashCluster::scrub_now() { scrub_tick(/*reschedule=*/false); }

void StashCluster::scrub_tick(bool reschedule) {
  counters_.scrub_cycles.inc();
  // Storage pass: verify the block table, then rewrite every quarantined
  // block from pristine data.  (The store is generative, so a repair is an
  // exact rewrite — no replica round-trip to model for durable blocks.)
  store_.scrub();
  for (const BlockKey& block : store_.quarantine_list())
    if (store_.repair_block(block)) counters_.scrub_repairs.inc();
  // Cache pass: walk one node's chunk digests per tick (round-robin)
  // against its ring successors over the anti-entropy path.  A cached
  // replica whose digest disagrees with its peers' is dropped and
  // re-pulled there, not trusted.
  const auto& members = dht_.ring().members;
  if (!members.empty()) {
    const NodeId id = members[scrub_cursor_ % members.size()];
    scrub_cursor_ =
        static_cast<std::uint32_t>((scrub_cursor_ + 1) % members.size());
    if (fault_.alive(id)) start_recovery(id);
  }
  if (reschedule && config_.scrub_interval > 0)
    loop_.schedule_background(config_.scrub_interval,
                              [this] { scrub_tick(/*reschedule=*/true); });
}

void StashCluster::register_callback_metrics() {
  using obs::MetricKind;
  registry_.callback("stash_cached_cells",
                     "Cells resident in local graphs across all nodes",
                     MetricKind::Gauge, [this] {
                       return static_cast<double>(total_cached_cells());
                     });
  registry_.callback("stash_guest_cells",
                     "Cells resident in guest graphs across all nodes",
                     MetricKind::Gauge, [this] {
                       return static_cast<double>(total_guest_cells());
                     });
  registry_.callback("stash_pending_queries",
                     "Queries in flight at the front-end", MetricKind::Gauge,
                     [this] { return static_cast<double>(pending_.size()); });
  registry_.callback("stash_server_queue_length",
                     "Requests queued across all node servers",
                     MetricKind::Gauge, [this] {
                       std::size_t total = 0;
                       for (const auto& node : nodes_)
                         total += node->server.queue_length();
                       return static_cast<double>(total);
                     });
  registry_.callback("stash_server_busy_workers",
                     "Busy workers across all node servers", MetricKind::Gauge,
                     [this] {
                       double total = 0.0;
                       for (const auto& node : nodes_)
                         total += node->server.busy_workers();
                       return total;
                     });
  registry_.callback("stash_server_completed_jobs_total",
                     "Jobs completed across all node servers",
                     MetricKind::Counter, [this] {
                       std::uint64_t total = 0;
                       for (const auto& node : nodes_)
                         total += node->server.completed_jobs();
                       return static_cast<double>(total);
                     });
  registry_.callback("stash_server_queue_wait_us_total",
                     "Virtual time jobs spent queued before dispatch",
                     MetricKind::Counter, [this] {
                       sim::SimTime total = 0;
                       for (const auto& node : nodes_)
                         total += node->server.total_queue_wait();
                       return static_cast<double>(total);
                     });
  registry_.callback("stash_server_peak_queue_length",
                     "Worst pending-queue depth seen on any node server",
                     MetricKind::Gauge, [this] {
                       std::size_t peak = 0;
                       for (const auto& node : nodes_)
                         peak = std::max(peak, node->server.peak_queue_length());
                       return static_cast<double>(peak);
                     });
  registry_.callback("stash_server_jobs_shed_total",
                     "Jobs shed by admission control across all node servers",
                     MetricKind::Counter, [this] {
                       std::uint64_t total = 0;
                       for (const auto& node : nodes_)
                         total += node->server.shed_jobs();
                       return static_cast<double>(total);
                     });
  registry_.callback("stash_server_jobs_expired_total",
                     "Jobs whose deadline expired while queued, all servers",
                     MetricKind::Counter, [this] {
                       std::uint64_t total = 0;
                       for (const auto& node : nodes_)
                         total += node->server.expired_jobs();
                       return static_cast<double>(total);
                     });
  registry_.callback("stash_server_jobs_dropped_total",
                     "Jobs wiped by server resets (crashes), all servers",
                     MetricKind::Counter, [this] {
                       std::uint64_t total = 0;
                       for (const auto& node : nodes_)
                         total += node->server.dropped_jobs() +
                                  node->maintenance.dropped_jobs();
                       return static_cast<double>(total);
                     });
  // Per-node graph counters (core/graph.hpp Stats), summed over local and
  // guest graphs at snapshot time.  Stats are lifetime-cumulative and
  // survive clear(), so crash wipes do not make these go backwards.
  const auto graph_stat = [this](std::uint64_t StashGraph::Stats::*field) {
    std::uint64_t total = 0;
    for (const auto& node : nodes_) {
      total += node->graph.stats().*field;
      total += node->guest_graph.stats().*field;
    }
    return static_cast<double>(total);
  };
  registry_.callback(
      "stash_graph_cells_absorbed_total",
      "Cells merged into node graphs (local + guest)", MetricKind::Counter,
      [graph_stat] { return graph_stat(&StashGraph::Stats::cells_absorbed); });
  registry_.callback(
      "stash_graph_cells_evicted_total",
      "Cells evicted by freshness pressure (local + guest)",
      MetricKind::Counter,
      [graph_stat] { return graph_stat(&StashGraph::Stats::cells_evicted); });
  registry_.callback(
      "stash_graph_cells_purged_total",
      "Cells dropped by TTL purges (local + guest)", MetricKind::Counter,
      [graph_stat] { return graph_stat(&StashGraph::Stats::cells_purged); });
  registry_.callback(
      "stash_graph_eviction_passes_total",
      "Eviction passes that dropped at least one chunk", MetricKind::Counter,
      [graph_stat] { return graph_stat(&StashGraph::Stats::eviction_passes); });
  registry_.callback(
      "stash_graph_freshness_touches_total",
      "Chunk freshness updates (accessed + dispersed)", MetricKind::Counter,
      [graph_stat] {
        return graph_stat(&StashGraph::Stats::freshness_touches);
      });
  registry_.callback(
      "stash_graph_chunks_invalidated_total",
      "Chunks dropped by real-time update invalidation", MetricKind::Counter,
      [graph_stat] {
        return graph_stat(&StashGraph::Stats::chunks_invalidated);
      });
  // Membership + partition counters read straight from the gossip and
  // fault-injection stats at snapshot time.
  registry_.callback("stash_gossip_probes_total",
                     "SWIM probe pings sent by all observers",
                     MetricKind::Counter, [this] {
                       return static_cast<double>(
                           membership_->stats().probes_sent);
                     });
  registry_.callback("stash_false_suspicions_total",
                     "Suspected members later refuted alive",
                     MetricKind::Counter, [this] {
                       return static_cast<double>(
                           membership_->stats().false_suspicions);
                     });
  registry_.callback("stash_partitions_observed_total",
                     "Network partitions activated by the fault plan",
                     MetricKind::Counter, [this] {
                       return static_cast<double>(
                           fault_.stats().partitions_observed);
                     });
  // Elastic membership gauges: the installed ring, read at snapshot time.
  registry_.callback("stash_ring_epoch",
                     "Epoch of the installed membership ring",
                     MetricKind::Gauge, [this] {
                       return static_cast<double>(dht_.epoch());
                     });
  registry_.callback("stash_ring_members",
                     "Members in the installed membership ring",
                     MetricKind::Gauge, [this] {
                       return static_cast<double>(dht_.num_nodes());
                     });
  registry_.callback("stash_rebalance_moves_inflight",
                     "Partition handoffs currently mid-transfer",
                     MetricKind::Gauge, [this] {
                       return static_cast<double>(moves_.size());
                     });
  // Integrity counters read straight from the store and fault-injection
  // stats at snapshot time (same pattern as the membership counters).
  registry_.callback("stash_integrity_checksum_failures_total",
                     "Storage scans that hit a block failing its checksum",
                     MetricKind::Counter, [this] {
                       return static_cast<double>(
                           store_.integrity().checksum_failures);
                     });
  registry_.callback("stash_blocks_quarantined_total",
                     "Distinct storage blocks quarantined after failing "
                     "verification",
                     MetricKind::Counter, [this] {
                       return static_cast<double>(
                           store_.integrity().blocks_quarantined);
                     });
  registry_.callback("stash_blocks_repaired_total",
                     "Quarantined or rotted blocks rewritten from pristine "
                     "data",
                     MetricKind::Counter, [this] {
                       return static_cast<double>(
                           store_.integrity().blocks_repaired);
                     });
  registry_.callback("stash_bitrot_injected_total",
                     "Storage bit-rot events fired by the fault plan",
                     MetricKind::Counter, [this] {
                       return static_cast<double>(
                           fault_.stats().bitrot_injected);
                     });
  registry_.callback("stash_messages_corrupted_total",
                     "In-flight messages bit-flipped by fault injection",
                     MetricKind::Counter, [this] {
                       return static_cast<double>(
                           fault_.stats().messages_corrupted);
                     });
  registry_.callback("stash_messages_truncated_total",
                     "In-flight messages torn short by fault injection",
                     MetricKind::Counter, [this] {
                       return static_cast<double>(
                           fault_.stats().messages_truncated);
                     });
  // Wall-clock exec pool activity, summed across nodes.  The aggregates
  // are always registered (0 with exec disabled — schema-required); the
  // per-worker breakdowns only exist when pools do.
  const auto exec_sum =
      [this](std::uint64_t concurrency::WorkerStats::* field) {
        std::uint64_t total = 0;
        for (const auto& node : nodes_)
          if (node->exec_engine) {
            const concurrency::WorkerStats s = node->exec_engine->total_stats();
            total += s.*field;
          }
        return static_cast<double>(total);
      };
  registry_.callback(
      "stash_exec_tasks_total", "Chunk tasks executed by wall-clock workers",
      MetricKind::Counter,
      [exec_sum] { return exec_sum(&concurrency::WorkerStats::executed); });
  registry_.callback(
      "stash_exec_steals_total",
      "Chunk tasks stolen from another worker's ring", MetricKind::Counter,
      [exec_sum] { return exec_sum(&concurrency::WorkerStats::stolen); });
  registry_.callback(
      "stash_exec_parks_total", "Times a wall-clock worker parked idle",
      MetricKind::Counter,
      [exec_sum] { return exec_sum(&concurrency::WorkerStats::parks); });
  registry_.callback(
      "stash_exec_wakeups_total", "Times a parked worker was woken",
      MetricKind::Counter,
      [exec_sum] { return exec_sum(&concurrency::WorkerStats::wakeups); });
  // Wall-clock robustness counters (DESIGN.md §14), also schema-required.
  const auto exec_stat_sum =
      [this](std::uint64_t exec::ExecStats::* field) {
        std::uint64_t total = 0;
        for (const auto& node : nodes_)
          if (node->exec_engine) {
            const exec::ExecStats s = node->exec_engine->exec_stats();
            total += s.*field;
          }
        return static_cast<double>(total);
      };
  registry_.callback(
      "stash_exec_deadline_exceeded_total",
      "Wall-clock evaluate calls that hit their deadline", MetricKind::Counter,
      [exec_stat_sum] {
        return exec_stat_sum(&exec::ExecStats::deadline_exceeded);
      });
  registry_.callback(
      "stash_exec_cancelled_chunks_total",
      "Chunk tasks cancelled cooperatively after a deadline or shutdown",
      MetricKind::Counter, [exec_stat_sum] {
        return exec_stat_sum(&exec::ExecStats::cancelled_chunks);
      });
  registry_.callback(
      "stash_exec_task_exceptions_total",
      "Chunk tasks that threw and were quarantined", MetricKind::Counter,
      [exec_stat_sum, exec_sum] {
        // Engine-recorded chunk failures plus anything the pool caught
        // from tasks submitted outside a batch.
        return exec_stat_sum(&exec::ExecStats::task_exceptions) +
               exec_sum(&concurrency::WorkerStats::task_exceptions);
      });
  registry_.callback(
      "stash_exec_watchdog_stalls_total",
      "Stuck-worker detections by the exec watchdog", MetricKind::Counter,
      [exec_sum] {
        return exec_sum(&concurrency::WorkerStats::watchdog_stalls);
      });
  registry_.callback(
      "stash_exec_submit_shed_total",
      "Chunk submissions shed to inline execution (all rings full)",
      MetricKind::Counter, [exec_sum] {
        return exec_sum(&concurrency::WorkerStats::submit_shed);
      });
  registry_.callback("stash_exec_queue_depth",
                     "Queued-but-unexecuted chunk tasks across all exec rings",
                     MetricKind::Gauge, [this] {
                       std::size_t depth = 0;
                       for (const auto& node : nodes_)
                         if (node->exec_engine)
                           depth += node->exec_engine->queue_depth();
                       return static_cast<double>(depth);
                     });
  registry_.callback("stash_exec_workers",
                     "Wall-clock worker threads across all nodes",
                     MetricKind::Gauge, [this] {
                       std::size_t workers = 0;
                       for (const auto& node : nodes_)
                         if (node->exec_engine)
                           workers += node->exec_engine->worker_count();
                       return static_cast<double>(workers);
                     });
  // Per-worker-slot queue depth and steal counters (summed over nodes at
  // the same slot index) — both exporters render these like any metric.
  if (config_.exec_threads > 0) {
    const std::size_t slots = nodes_.empty()
                                  ? 0
                                  : nodes_.front()->exec_engine->worker_count();
    for (std::size_t i = 0; i < slots; ++i) {
      const std::string suffix = std::to_string(i);
      registry_.callback(
          "stash_exec_worker" + suffix + "_tasks_total",
          "Chunk tasks executed by worker slot " + suffix + " (all nodes)",
          MetricKind::Counter, [this, i] {
            std::uint64_t total = 0;
            for (const auto& node : nodes_)
              if (node->exec_engine)
                total += node->exec_engine->worker_stats(i).executed;
            return static_cast<double>(total);
          });
      registry_.callback(
          "stash_exec_worker" + suffix + "_steals_total",
          "Chunk tasks stolen by worker slot " + suffix + " (all nodes)",
          MetricKind::Counter, [this, i] {
            std::uint64_t total = 0;
            for (const auto& node : nodes_)
              if (node->exec_engine)
                total += node->exec_engine->worker_stats(i).stolen;
            return static_cast<double>(total);
          });
      registry_.callback(
          "stash_exec_worker" + suffix + "_queue_depth",
          "Queued chunk tasks in worker slot " + suffix + "'s rings "
          "(all nodes)",
          MetricKind::Gauge, [this, i] {
            std::size_t depth = 0;
            for (const auto& node : nodes_)
              if (node->exec_engine)
                depth += node->exec_engine->worker_queue_depth(i);
            return static_cast<double>(depth);
          });
    }
  }
}

ClusterMetrics StashCluster::metrics() const {
  ClusterMetrics m;
  m.queries_completed = counters_.queries_completed.value();
  m.subqueries_processed = counters_.subqueries_processed.value();
  m.handoffs_initiated = counters_.handoffs_initiated.value();
  m.cliques_replicated = counters_.cliques_replicated.value();
  m.cells_replicated = counters_.cells_replicated.value();
  m.distress_rejections = counters_.distress_rejections.value();
  m.reroutes = counters_.reroutes.value();
  m.guest_fallbacks = counters_.guest_fallbacks.value();
  m.maintenance_tasks = counters_.maintenance_tasks.value();
  m.total_maintenance_time =
      static_cast<sim::SimTime>(counters_.maintenance_time_us.value());
  m.node_crashes = counters_.node_crashes.value();
  m.node_restarts = counters_.node_restarts.value();
  m.messages_dropped = counters_.messages_dropped.value();
  m.timeouts_fired = counters_.timeouts_fired.value();
  m.handoff_timeouts = counters_.handoff_timeouts.value();
  m.subquery_retries = counters_.subquery_retries.value();
  m.failovers = counters_.failovers.value();
  m.failed_subqueries = counters_.failed_subqueries.value();
  m.partial_queries = counters_.partial_queries.value();
  m.subqueries_shed = counters_.subqueries_shed.value();
  m.subqueries_expired = counters_.subqueries_expired.value();
  m.degraded_subqueries = counters_.degraded_subqueries.value();
  m.degraded_queries = counters_.degraded_queries.value();
  m.deadline_cut_subqueries = counters_.deadline_cut_subqueries.value();
  m.deadline_cut_queries = counters_.deadline_cut_queries.value();
  m.retries_suppressed = counters_.retries_suppressed.value();
  m.gossip_probes = membership_->stats().probes_sent;
  m.false_suspicions = membership_->stats().false_suspicions;
  m.partitions_observed = fault_.stats().partitions_observed;
  m.digests_exchanged = counters_.digests_exchanged.value();
  m.chunks_rewarmed = counters_.chunks_rewarmed.value();
  m.cells_rewarmed = counters_.cells_rewarmed.value();
  m.recoveries = counters_.recoveries.value();
  m.integrity_checksum_failures = store_.integrity().checksum_failures;
  m.blocks_quarantined = store_.integrity().blocks_quarantined;
  m.blocks_repaired = store_.integrity().blocks_repaired;
  m.frame_integrity_failures = counters_.frame_integrity_failures.value();
  m.messages_redelivered = counters_.messages_redelivered.value();
  m.poison_messages = counters_.poison_messages.value();
  m.messages_corrupted = fault_.stats().messages_corrupted;
  m.messages_truncated = fault_.stats().messages_truncated;
  m.corrupt_queries = counters_.corrupt_queries.value();
  m.scrub_cycles = counters_.scrub_cycles.value();
  m.scrub_repairs = counters_.scrub_repairs.value();
  m.replica_divergences = counters_.replica_divergences.value();
  m.rebalance_partitions_moved = counters_.rebalance_partitions_moved.value();
  m.rebalance_transfers_aborted =
      counters_.rebalance_transfers_aborted.value();
  m.rebalance_ownership_reverts =
      counters_.rebalance_ownership_reverts.value();
  m.rebalance_epoch_advances = counters_.rebalance_epoch_advances.value();
  return m;
}

void StashCluster::wipe_node(NodeId id) {
  Node& node = *nodes_[id];
  node.graph.clear();
  node.guest_graph.clear();
  node.routing.clear();
  node.server.reset();
  node.maintenance.reset();
  node.last_handoff = std::numeric_limits<sim::SimTime>::min() / 2;
  node.last_handoff_attempt = std::numeric_limits<sim::SimTime>::min() / 2;
}

void StashCluster::crash_node(NodeId id) { fault_.force_crash(id); }

void StashCluster::restart_node(NodeId id) { fault_.force_restart(id); }

bool StashCluster::reachable(NodeId id) const {
  return membership_->usable(sim::kFrontendNode, id) && !suspected(id);
}

void StashCluster::recover_node(NodeId id) {
  if (id >= nodes_.size())
    throw std::out_of_range("StashCluster::recover_node: bad node id");
  start_recovery(id);
}

std::vector<StashCluster::DigestEntry> StashCluster::recovery_digest(
    NodeId holder, NodeId owner) const {
  std::vector<DigestEntry> out;
  const auto partitions = dht_.partitions_of(owner);
  const Node& node = *nodes_[holder];
  const auto covers = [&](const std::string& prefix) {
    for (const auto& p : partitions) {
      const bool hit = prefix.size() >= p.size()
                           ? prefix.compare(0, p.size(), p) == 0
                           : p.compare(0, prefix.size(), prefix) == 0;
      if (hit) return true;
    }
    return false;
  };
  std::set<std::pair<int, ChunkKey>> seen;
  const auto collect = [&](const StashGraph& graph) {
    for (int lvl = 0; lvl < kNumLevels; ++lvl) {
      const Resolution res = resolution_of_level(lvl);
      graph.for_each_chunk(
          res, [&](const ChunkKey& key, const StashGraph::ChunkData&) {
            if (!covers(key.prefix_str())) return;
            if (!graph.chunk_complete(res, key)) return;
            if (!seen.insert({lvl, key}).second) return;
            // Content-covering digest (PLM bitmap + Cell contents, both on
            // the shared integrity checksum): a mismatch detects a rotted
            // or diverged replica, not just different coverage.
            out.push_back({res, key, graph.chunk_digest(res, key)});
          });
    }
  };
  collect(node.graph);
  collect(node.guest_graph);
  return out;
}

void StashCluster::start_recovery(NodeId id) {
  if (!config_.recovery || !fault_.alive(id)) return;
  if (loop_.now() - last_recovery_[id] < config_.recovery_cooldown) return;
  last_recovery_[id] = loop_.now();
  counters_.recoveries.inc();
  Node& node = *nodes_[id];
  // Routing hygiene first: entries pointing at peers this node's own view
  // does not consider alive are invalidated before any query can follow
  // them into a black hole.
  for (NodeId peer = 0; peer < nodes_.size(); ++peer)
    if (peer != id && !membership_->usable(id, peer))
      node.routing.drop_helper(peer);
  // Digest peers: the first recovery_peers nodes along this node's ring
  // successor chain.  Whichever of them the front-end failed over to
  // served (and cached) this node's partitions while it was gone; the
  // rejoining node cannot know which — front-end reachability during the
  // outage is not reconstructible — so it asks the whole bracket.  The
  // bracket is deliberately NOT filtered through this node's own gossip
  // view: right after a heal that view still calls the other side dead,
  // and those are exactly the replica holders.  A digest request to a
  // truly dead peer just goes unanswered — recovery is fire-and-forget.
  // Successors come from the installed ring, so recovery keeps working
  // across epoch changes (a decommissioned slot is simply never a peer).
  std::vector<NodeId> peers;
  const std::size_t ring_size = dht_.ring().members.size();
  for (std::uint32_t k = 0;
       k + 1 < ring_size && peers.size() < config_.recovery_peers; ++k) {
    const NodeId peer = dht_.successor_of_node(id, k);
    if (peer != id) peers.push_back(peer);
  }
  for (const NodeId peer : peers) {
    // Digest Request: rejoining node -> replica holder.
    send_message(id, peer, config_.request_bytes, [this, id, peer] {
      const auto digest = std::make_shared<std::vector<DigestEntry>>(
          recovery_digest(peer, id));
      // Digest Response: one (level, chunk, bitmap-hash) triple per entry.
      const std::size_t bytes = config_.request_bytes + 24 * digest->size();
      send_message(peer, id, bytes, [this, id, peer, digest] {
        counters_.digests_exchanged.inc();
        Node& local = *nodes_[id];
        // Diff against the local graph's content digests.  Pull a chunk
        // this node does not hold at all; when BOTH sides hold it complete
        // but the digests disagree, the local copy diverged or rotted —
        // quarantine it (drop) and re-pull, never trust it.  A locally
        // partial chunk is left alone: absorb's idempotence guard would
        // reject the overlapping days anyway.
        auto wanted = std::make_shared<
            std::vector<std::pair<Resolution, ChunkKey>>>();
        for (const auto& entry : *digest) {
          if (wanted->size() >= config_.recovery_max_chunks) break;
          const std::uint64_t local_hash =
              local.graph.chunk_digest(entry.res, entry.chunk);
          if (local_hash == entry.hash) continue;  // same coverage + content
          if (local_hash != 0) {
            if (!local.graph.chunk_complete(entry.res, entry.chunk))
              continue;  // partial: skip
            local.graph.drop_chunk(entry.res, entry.chunk);
            counters_.replica_divergences.inc();
          }
          wanted->emplace_back(entry.res, entry.chunk);
        }
        if (wanted->empty()) return;
        // Chunk Pull Request: names exactly the missing complete chunks.
        const std::size_t req_bytes =
            config_.request_bytes + 16 * wanted->size();
        send_message(id, peer, req_bytes, [this, id, peer, wanted] {
          Node& holder = *nodes_[peer];
          auto payload = chunk_payload(holder.graph, *wanted);
          std::set<std::pair<int, ChunkKey>> shipped;
          for (const auto& c : payload)
            shipped.insert({level_index(c.res), c.chunk});
          std::vector<std::pair<Resolution, ChunkKey>> rest;
          for (const auto& [res, chunk] : *wanted)
            if (!shipped.contains({level_index(res), chunk}))
              rest.emplace_back(res, chunk);
          for (auto& c : chunk_payload(holder.guest_graph, rest))
            payload.push_back(std::move(c));
          if (payload.empty()) return;
          codec::Buffer wire = codec::encode_replication_frame(payload);
          // Re-warm shipment rides the checksummed Replication frame path
          // (same wire format as hotspot handoff): a corrupted transfer is
          // detected and redelivered instead of poisoning the rejoining
          // node's cache.
          send_frame(
              peer, id, std::move(wire),
              [this, id](codec::Buffer&& verified) {
                Node& rejoined = *nodes_[id];
                std::vector<ChunkContribution> contributions;
                try {
                  contributions = codec::decode_replication_payload(verified);
                } catch (const std::exception&) {
                  counters_.poison_messages.inc();
                  return;
                }
                std::uint64_t chunks = 0, cells = 0;
                for (const auto& c : contributions) {
                  if (rejoined.graph.absorb(c, loop_.now()) == 0) continue;
                  ++chunks;
                  cells += c.cells.size();
                }
                counters_.chunks_rewarmed.inc(chunks);
                counters_.cells_rewarmed.inc(cells);
              },
              /*background=*/false, config_.max_redeliveries);
        });
      });
    });
  }
}

std::vector<StashCluster::DigestEntry> StashCluster::partition_digest(
    NodeId holder, const std::string& partition) const {
  std::vector<DigestEntry> out;
  const Node& node = *nodes_[holder];
  const auto covers = [&](const std::string& prefix) {
    return prefix.size() >= partition.size()
               ? prefix.compare(0, partition.size(), partition) == 0
               : partition.compare(0, prefix.size(), prefix) == 0;
  };
  std::set<std::pair<int, ChunkKey>> seen;
  const auto collect = [&](const StashGraph& graph) {
    for (int lvl = 0; lvl < kNumLevels; ++lvl) {
      const Resolution res = resolution_of_level(lvl);
      graph.for_each_chunk(
          res, [&](const ChunkKey& key, const StashGraph::ChunkData&) {
            if (!covers(key.prefix_str())) return;
            if (!graph.chunk_complete(res, key)) return;
            if (!seen.insert({lvl, key}).second) return;
            out.push_back({res, key, graph.chunk_digest(res, key)});
          });
    }
  };
  collect(node.graph);
  collect(node.guest_graph);
  return out;
}

// --- elastic membership & ring rebalancing -------------------------------
//
// Ownership is the epoch-versioned ring in the DHT plus the handoff
// records in moves_: a partition with a live Move is answered by its OLD
// owner (Move::from); erasing the record is the atomic flip to the ring
// owner.  The front-end drives everything — it watches its own gossip
// view, advances the epoch only after the desired member set holds stable,
// plans one Move per partition whose serving owner changes, and the new
// owners pull warm state from live donors over the same digest/pull/
// checksummed-frame path anti-entropy recovery uses.  All of it is
// background traffic: a run-to-quiescence test that never scales sees a
// bit-identical cluster.

NodeId StashCluster::serving_owner(const std::string& partition) const {
  const auto it = moves_.find(partition);
  return it != moves_.end() ? it->second.from
                            : dht_.node_for_partition(partition);
}

bool StashCluster::move_current(const std::string& partition,
                                std::uint64_t epoch, int attempt) const {
  const auto it = moves_.find(partition);
  return it != moves_.end() && it->second.epoch == epoch &&
         it->second.attempt == attempt;
}

bool StashCluster::rebalance_in_progress() const {
  if (!moves_.empty() || !joining_.empty() || !leaving_.empty()) return true;
  return elastic_ && desired_ring_members() != dht_.ring().members;
}

bool StashCluster::run_until_stable(sim::SimTime max_wait) {
  const sim::SimTime deadline = loop_.now() + max_wait;
  const sim::SimTime step =
      std::max<sim::SimTime>(config_.ring_check_interval, 1);
  while (loop_.now() < deadline) {
    if (!rebalance_in_progress()) return true;
    loop_.run_for(std::min(step, deadline - loop_.now()));
  }
  return !rebalance_in_progress();
}

void StashCluster::ensure_elastic() {
  if (elastic_armed_) return;
  elastic_armed_ = true;
  elastic_ = true;
  ring_candidate_ = dht_.ring().members;
  ring_candidate_since_ = loop_.now();
  loop_.schedule_background(config_.ring_check_interval,
                            [this] { ring_watch_tick(); });
  if (config_.autoscale.enabled)
    loop_.schedule_background(config_.autoscale.eval_interval,
                              [this] { autoscale_tick(); });
}

void StashCluster::join_node(NodeId id) {
  if (id >= nodes_.size())
    throw std::out_of_range("StashCluster::join_node: bad node id");
  if (membership_->is_registered(id)) return;  // member or already joining
  if (!fault_.alive(id)) return;  // a dead standby cannot announce itself
  ensure_elastic();  // programmatic scaling arms the watcher lazily
  joining_.insert(id);
  membership_->join(id);
}

void StashCluster::decommission_node(NodeId id) {
  if (id >= nodes_.size())
    throw std::out_of_range("StashCluster::decommission_node: bad node id");
  if (!membership_->is_registered(id)) return;  // standby or already left
  if (leaving_.contains(id) || joining_.contains(id)) return;
  if (!dht_.ring().contains(id)) {
    // Registered but never made it into an epoch (join still converging):
    // it owns nothing, so it can leave immediately.
    membership_->leave(id);
    return;
  }
  // Never drain the last serving member.
  if (dht_.ring().members.size() <= leaving_.size() + 1) return;
  ensure_elastic();  // programmatic scaling arms the watcher lazily
  leaving_.insert(id);  // keeps serving until its last outbound move flips
}

std::vector<NodeId> StashCluster::desired_ring_members() const {
  std::vector<NodeId> out;
  for (const NodeId m : dht_.ring().members) {
    if (leaving_.contains(m)) continue;
    // A deregistered ring member is a reverted joiner: it died before its
    // inbound transfers completed, so the next epoch drops it.  (Crashed
    // *established* members stay — failover covers them, and only an
    // explicit decommission removes a member.)
    if (!membership_->is_registered(m)) continue;
    out.push_back(m);
  }
  for (const NodeId j : joining_) {
    if (dht_.ring().contains(j)) continue;
    if (!membership_->is_registered(j)) continue;
    // Admit a joiner only once the front-end's own view believes it alive
    // (the stabilize window then debounces the rest of the convergence).
    if (membership_->state(sim::kFrontendNode, j) != MemberState::kAlive)
      continue;
    out.push_back(j);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void StashCluster::ring_watch_tick() {
  loop_.schedule_background(config_.ring_check_interval,
                            [this] { ring_watch_tick(); });
  std::vector<NodeId> desired = desired_ring_members();
  if (desired == dht_.ring().members || desired.empty()) {
    ring_candidate_ = dht_.ring().members;
    ring_candidate_since_ = loop_.now();
    return;
  }
  if (desired != ring_candidate_) {
    // New candidate: start the stability clock.
    ring_candidate_ = std::move(desired);
    ring_candidate_since_ = loop_.now();
    return;
  }
  if (loop_.now() - ring_candidate_since_ < config_.ring_stabilize_delay)
    return;
  advance_epoch(std::move(desired));
  ring_candidate_ = dht_.ring().members;
  ring_candidate_since_ = loop_.now();
}

void StashCluster::advance_epoch(std::vector<NodeId> members) {
  // Who answers each partition under the OUTGOING epoch + handoffs?  That
  // node keeps answering through the transition: it becomes Move::from
  // wherever ownership shifts.
  std::vector<std::pair<std::string, NodeId>> serving;
  dht_.for_each_partition([&](std::string_view p) {
    std::string key(p);
    NodeId owner = serving_owner(key);
    serving.emplace_back(std::move(key), owner);
  });
  // Supersede in-flight moves: their (epoch, attempt) tags go stale, so
  // every outstanding transfer continuation drops itself on arrival.
  for (auto& [partition, move] : moves_)
    if (move.deadline_timer != 0) loop_.cancel(move.deadline_timer);
  RingView next;
  next.epoch = dht_.epoch() + 1;
  next.members = std::move(members);
  dht_.install(std::move(next));
  counters_.rebalance_epoch_advances.inc();
  std::unordered_map<std::string, Move> planned;
  for (auto& [partition, old_owner] : serving) {
    const NodeId new_owner = dht_.node_for_partition(partition);
    if (new_owner == old_owner) continue;
    Move move;
    move.from = old_owner;
    move.to = new_owner;
    move.epoch = dht_.epoch();
    planned.emplace(partition, move);
  }
  moves_ = std::move(planned);
  for (const auto& [partition, move] : moves_) start_move(partition);
  // A leaver that owned nothing (or whose every move was superseded into
  // a no-op) finishes right away; likewise a joiner with no inbound moves
  // is fully admitted.
  for (auto it = joining_.begin(); it != joining_.end();) {
    const NodeId j = *it;
    bool inbound = false;
    for (const auto& [p, m] : moves_)
      if (m.to == j) {
        inbound = true;
        break;
      }
    if (dht_.ring().contains(j) && !inbound)
      it = joining_.erase(it);
    else
      ++it;
  }
  const std::vector<NodeId> leavers(leaving_.begin(), leaving_.end());
  for (const NodeId l : leavers) maybe_finish_decommission(l);
}

void StashCluster::start_move(const std::string& partition) {
  const auto it = moves_.find(partition);
  if (it == moves_.end()) return;
  Move& move = it->second;
  const std::uint64_t epoch = move.epoch;
  const int attempt = move.attempt;
  const NodeId to = move.to;
  // Retry budget + deadline bound every attempt: a wedged transfer can
  // stall routing for at most max_attempts * transfer_deadline before the
  // partition flips cold.
  move.deadline_timer = loop_.schedule_background_cancellable(
      config_.rebalance_transfer_deadline,
      [this, partition, epoch, attempt] {
        on_move_deadline(partition, epoch, attempt);
      });
  // Donor: the serving owner while it lives; a dead donor fails over to
  // any live ring member (complete cached chunks are content-digested, so
  // any holder is equivalent — and a cold donor just answers "nothing").
  NodeId donor = move.from;
  if (!fault_.alive(donor) || donor == to) {
    donor = to;
    for (const NodeId m : dht_.ring().members)
      if (m != to && fault_.alive(m)) {
        donor = m;
        break;
      }
  }
  if (donor == to || !fault_.alive(to)) return;  // deadline path owns this
  // Kickoff: front-end -> new owner -> donor digest -> diff -> pull ->
  // checksummed frame -> absorb -> done report.  Same shape (and the same
  // counters) as anti-entropy recovery, scoped to one partition.
  send_message(
      sim::kFrontendNode, to, config_.request_bytes,
      [this, partition, epoch, attempt, donor, to] {
        if (!move_current(partition, epoch, attempt)) return;
        send_message(
            to, donor, config_.request_bytes,
            [this, partition, epoch, attempt, donor, to] {
              const auto digest = std::make_shared<std::vector<DigestEntry>>(
                  partition_digest(donor, partition));
              const std::size_t bytes =
                  config_.request_bytes + 24 * digest->size();
              send_message(
                  donor, to, bytes,
                  [this, partition, epoch, attempt, donor, to, digest] {
                    if (!move_current(partition, epoch, attempt)) return;
                    counters_.digests_exchanged.inc();
                    Node& local = *nodes_[to];
                    auto wanted = std::make_shared<
                        std::vector<std::pair<Resolution, ChunkKey>>>();
                    for (const auto& entry : *digest) {
                      if (wanted->size() >= config_.rebalance_max_chunks)
                        break;
                      const std::uint64_t local_hash =
                          local.graph.chunk_digest(entry.res, entry.chunk);
                      if (local_hash == entry.hash) continue;
                      if (local_hash != 0) {
                        if (!local.graph.chunk_complete(entry.res,
                                                        entry.chunk))
                          continue;  // partial: absorb's guard protects it
                        local.graph.drop_chunk(entry.res, entry.chunk);
                        counters_.replica_divergences.inc();
                      }
                      wanted->emplace_back(entry.res, entry.chunk);
                    }
                    if (wanted->empty()) {
                      // Nothing warm to pull (cold partition, or already
                      // in sync): the handoff is complete as-is.
                      send_message(
                          to, sim::kFrontendNode, kAckBytes,
                          [this, partition, epoch, attempt] {
                            complete_move(partition, epoch, attempt);
                          },
                          /*background=*/true);
                      return;
                    }
                    const std::size_t req_bytes =
                        config_.request_bytes + 16 * wanted->size();
                    send_message(
                        to, donor, req_bytes,
                        [this, partition, epoch, attempt, donor, to, wanted] {
                          if (!move_current(partition, epoch, attempt))
                            return;
                          Node& holder = *nodes_[donor];
                          auto payload = chunk_payload(holder.graph, *wanted);
                          std::set<std::pair<int, ChunkKey>> shipped;
                          for (const auto& c : payload)
                            shipped.insert({level_index(c.res), c.chunk});
                          std::vector<std::pair<Resolution, ChunkKey>> rest;
                          for (const auto& [res, chunk] : *wanted)
                            if (!shipped.contains({level_index(res), chunk}))
                              rest.emplace_back(res, chunk);
                          for (auto& c :
                               chunk_payload(holder.guest_graph, rest))
                            payload.push_back(std::move(c));
                          if (payload.empty()) {
                            send_message(
                                donor, to, kAckBytes,
                                [this, partition, epoch, attempt, to] {
                                  if (!move_current(partition, epoch,
                                                    attempt))
                                    return;
                                  send_message(
                                      to, sim::kFrontendNode, kAckBytes,
                                      [this, partition, epoch, attempt] {
                                        complete_move(partition, epoch,
                                                      attempt);
                                      },
                                      /*background=*/true);
                                },
                                /*background=*/true);
                            return;
                          }
                          codec::Buffer wire =
                              codec::encode_replication_frame(payload);
                          send_frame(
                              donor, to, std::move(wire),
                              [this, partition, epoch, attempt,
                               to](codec::Buffer&& verified) {
                                if (!move_current(partition, epoch, attempt))
                                  return;
                                Node& target = *nodes_[to];
                                std::vector<ChunkContribution> contributions;
                                try {
                                  contributions =
                                      codec::decode_replication_payload(
                                          verified);
                                } catch (const std::exception&) {
                                  counters_.poison_messages.inc();
                                  return;  // deadline path retries
                                }
                                std::uint64_t chunks = 0, cells = 0;
                                for (const auto& c : contributions) {
                                  if (target.graph.absorb(c, loop_.now()) ==
                                      0)
                                    continue;
                                  ++chunks;
                                  cells += c.cells.size();
                                }
                                counters_.chunks_rewarmed.inc(chunks);
                                counters_.cells_rewarmed.inc(cells);
                                send_message(
                                    to, sim::kFrontendNode, kAckBytes,
                                    [this, partition, epoch, attempt] {
                                      complete_move(partition, epoch,
                                                    attempt);
                                    },
                                    /*background=*/true);
                              },
                              /*background=*/true, config_.max_redeliveries);
                        },
                        /*background=*/true);
                  },
                  /*background=*/true);
            },
            /*background=*/true);
      },
      /*background=*/true);
}

void StashCluster::on_move_deadline(const std::string& partition,
                                    std::uint64_t epoch, int attempt) {
  if (!move_current(partition, epoch, attempt)) return;
  Move& move = moves_.find(partition)->second;
  move.deadline_timer = 0;
  counters_.rebalance_transfers_aborted.inc();
  // A deregistered target is a reverting joiner: hold the handoff (old
  // owner keeps serving) until the watcher advances the epoch past it.
  if (!membership_->is_registered(move.to)) return;
  if (move.attempt + 1 < config_.rebalance_max_attempts) {
    ++move.attempt;
    start_move(partition);
    return;
  }
  // Attempts exhausted: flip cold.  The ring owner answers from durable
  // storage (never wrong, just unwarmed) and rebuilds warmth on demand.
  flip_move(partition);
}

void StashCluster::complete_move(const std::string& partition,
                                 std::uint64_t epoch, int attempt) {
  if (!move_current(partition, epoch, attempt)) return;
  flip_move(partition);
}

void StashCluster::flip_move(const std::string& partition) {
  const auto it = moves_.find(partition);
  if (it == moves_.end()) return;
  const Move move = it->second;
  if (move.deadline_timer != 0) loop_.cancel(move.deadline_timer);
  moves_.erase(it);  // THE flip: routing now reads the installed ring
  counters_.rebalance_partitions_moved.inc();
  if (joining_.contains(move.to)) {
    bool inbound = false;
    for (const auto& [p, m] : moves_)
      if (m.to == move.to) {
        inbound = true;
        break;
      }
    if (!inbound) joining_.erase(move.to);  // fully admitted
  }
  if (leaving_.contains(move.from)) maybe_finish_decommission(move.from);
}

void StashCluster::maybe_finish_decommission(NodeId id) {
  if (!leaving_.contains(id)) return;
  if (dht_.ring().contains(id)) return;  // epoch has not moved past it yet
  for (const auto& [p, m] : moves_)
    if (m.from == id) return;  // still draining
  leaving_.erase(id);
  // Explicit departure rumor (kLeft out-bids dead): even observers that
  // watched it crash mid-drain converge to "left", never probe it again.
  membership_->leave(id);
  wipe_node(id);
  // Routing hygiene cluster-wide: nobody reroutes to a departed member.
  for (const auto& node : nodes_)
    if (node->id != id && fault_.alive(node->id))
      node->routing.drop_helper(id);
}

void StashCluster::handle_elastic_crash(NodeId id) {
  if (!joining_.contains(id)) return;
  // A joiner died before its handoffs completed: the join is reverted, not
  // failed over.  Deregistering drops it from the desired member set, so
  // the watcher advances the epoch without it; until then the in-flight
  // Move records keep the old owners serving (that IS the revert — routing
  // never pointed at the dead joiner).  Timers are silenced so the
  // deadline path cannot flip a partition cold onto a corpse.
  joining_.erase(id);
  membership_->leave(id);
  for (auto& [partition, move] : moves_) {
    if (move.to != id) continue;
    if (move.deadline_timer != 0) {
      loop_.cancel(move.deadline_timer);
      move.deadline_timer = 0;
    }
    counters_.rebalance_ownership_reverts.inc();
  }
}

void StashCluster::autoscale_tick() {
  loop_.schedule_background(config_.autoscale.eval_interval,
                            [this] { autoscale_tick(); });
  const AutoscalePolicy& policy = config_.autoscale;
  // PR-3 signals: worst queue depth seen across serving members since the
  // previous tick (the high-water mark, so sub-interval bursts count — an
  // instantaneous sample at the tick would miss every queue that built and
  // drained between evaluations), and admission-control sheds since the
  // previous tick.
  std::size_t peak = 0, high_water = 0;
  for (const NodeId m : dht_.ring().members) {
    peak = std::max(peak, nodes_[m]->server.queue_length());
    high_water = std::max(high_water, nodes_[m]->server.peak_queue_length());
  }
  const bool queue_spiked =
      high_water > autoscale_prev_peak_ && high_water >= policy.high_queue;
  autoscale_prev_peak_ = std::max(autoscale_prev_peak_, high_water);
  std::uint64_t shed = 0;
  for (const auto& node : nodes_) shed += node->server.shed_jobs();
  const std::uint64_t shed_delta =
      shed >= autoscale_prev_shed_ ? shed - autoscale_prev_shed_ : 0;
  autoscale_prev_shed_ = shed;
  const bool hot = queue_spiked || shed_delta >= policy.high_shed_delta;
  const bool cold =
      !queue_spiked && peak <= policy.low_queue && shed_delta == 0;
  autoscale_high_ticks_ = hot ? autoscale_high_ticks_ + 1 : 0;
  autoscale_low_ticks_ = cold ? autoscale_low_ticks_ + 1 : 0;
  if (loop_.now() - autoscale_last_action_ < policy.cooldown) return;
  if (rebalance_in_progress()) return;  // let the current move land first
  if (autoscale_high_ticks_ >= policy.hysteresis_ticks) {
    // Scale out: admit the lowest live standby slot.
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      if (membership_->is_registered(id) || !fault_.alive(id)) continue;
      join_node(id);
      autoscale_last_action_ = loop_.now();
      autoscale_high_ticks_ = 0;
      return;
    }
    return;
  }
  if (autoscale_low_ticks_ >= policy.hysteresis_ticks &&
      dht_.ring().members.size() > policy.min_nodes) {
    // Scale in: drain the highest member back to standby.
    decommission_node(dht_.ring().members.back());
    autoscale_last_action_ = loop_.now();
    autoscale_low_ticks_ = 0;
  }
}

bool StashCluster::suspected(NodeId id) const {
  return suspect_until_[id] > loop_.now();
}

bool StashCluster::node_suspected(NodeId id) const {
  if (id >= suspect_until_.size())
    throw std::out_of_range("StashCluster::node_suspected: bad node id");
  return suspected(id);
}

void StashCluster::suspect(NodeId id) {
  suspect_until_[id] = loop_.now() + config_.suspect_ttl;
}

void StashCluster::absolve(NodeId id) { suspect_until_[id] = kNeverSuspected; }

void StashCluster::send_message(std::uint32_t from, std::uint32_t to,
                                std::size_t bytes,
                                std::function<void()> deliver,
                                bool background) {
  ++messages_sent_;
  if (fault_.should_drop(from, to)) {
    counters_.messages_dropped.inc();
    return;
  }
  const sim::SimTime delay =
      config_.cost.net_transfer(bytes) + fault_.extra_latency(from, to);
  auto action = [this, to, deliver = std::move(deliver)] {
    // A message addressed to a node that died in flight is simply lost;
    // the sender's timeout is the only notification it will ever get.
    if (!fault_.alive(to)) return;
    deliver();
  };
  if (background)
    loop_.schedule_background(delay, std::move(action));
  else
    loop_.schedule(delay, std::move(action));
}

void StashCluster::send_frame(
    std::uint32_t from, std::uint32_t to, std::vector<std::uint8_t> frame,
    std::function<void(std::vector<std::uint8_t>&&)> deliver, bool background,
    int redeliveries_left) {
  // Tamper dice roll at send time (the event loop guarantees a
  // deterministic call order); the tamper mutates a wire copy so a NACKed
  // frame can be retransmitted from the sender's pristine bytes.
  const sim::Tamper tamper = fault_.should_tamper(from, to);
  std::vector<std::uint8_t> wire = frame;
  sim::apply_tamper(tamper, wire);
  const std::size_t bytes = wire.size() + config_.request_bytes;
  send_message(
      from, to, bytes,
      [this, from, to, frame = std::move(frame), wire = std::move(wire),
       deliver = std::move(deliver), background,
       redeliveries_left]() mutable {
        codec::Buffer payload;
        try {
          payload = codec::decode_frame(wire);
        } catch (const codec::IntegrityError&) {
          counters_.frame_integrity_failures.inc();
          if (redeliveries_left <= 0) {
            // Poison message: still corrupt after the redelivery budget.
            // Dropped and counted — never parsed, never crashes, never
            // silently absorbed.
            counters_.poison_messages.inc();
            return;
          }
          counters_.messages_redelivered.inc();
          // NACK back to the sender, which retransmits its pristine copy;
          // the resend is a fresh physical message with fresh dice.
          send_message(
              to, from, kAckBytes,
              [this, from, to, frame = std::move(frame),
               deliver = std::move(deliver), background, redeliveries_left] {
                send_frame(from, to, std::move(frame), std::move(deliver),
                           background, redeliveries_left - 1);
              },
              background);
          return;
        }
        deliver(std::move(payload));
      },
      background);
}

sim::SimTime StashCluster::service_time(const EvalBreakdown& b) const {
  const auto& cost = config_.cost;
  sim::SimTime t = config_.subquery_overhead;
  t += cost.cache_probes(b.cache_probes);
  t += static_cast<sim::SimTime>(b.scan.blocks_touched) * cost.disk_seek;
  t += cost.disk_stream(b.scan.bytes_read);
  t += cost.scan(b.scan.records_scanned);
  t += cost.merge(b.synthesis_merges);
  t += cost.merge(b.cells_from_cache + b.cells_scanned + b.cells_synthesized);
  return t;
}

void StashCluster::record_serve_spans(std::uint64_t query_id,
                                      obs::SpanId parent, NodeId node_id,
                                      const EvalBreakdown& b, bool guest) {
  if (!tracer_.enabled() || parent == obs::kNoSpan) return;
  const auto& cost = config_.cost;
  const sim::SimTime end = loop_.now();
  const sim::SimTime service = service_time(b);
  const obs::SpanId serve = tracer_.record_span(
      query_id, parent, guest ? "serve guest" : "serve", end - service, end);
  tracer_.tag(query_id, serve, "node", std::to_string(node_id));
  tracer_.tag(query_id, serve, "chunks_from_cache",
              std::to_string(b.chunks_from_cache));
  tracer_.tag(query_id, serve, "chunks_synthesized",
              std::to_string(b.chunks_synthesized));
  tracer_.tag(query_id, serve, "chunks_scanned",
              std::to_string(b.chunks_scanned));
  tracer_.tag(query_id, serve, "chunks_missing",
              std::to_string(b.chunks_missing));
  // The stages below replay service_time()'s decomposition term by term, so
  // the children partition [end - service, end] exactly (zero-cost stages
  // are elided — they would be zero-width anyway).
  sim::SimTime t = end - service;
  const auto stage = [&](const char* name, sim::SimTime dur) {
    if (dur <= 0) return;
    tracer_.record_span(query_id, serve, name, t, t + dur);
    t += dur;
  };
  stage("dispatch", config_.subquery_overhead);
  stage("cache_probe", cost.cache_probes(b.cache_probes));
  stage("disk",
        static_cast<sim::SimTime>(b.scan.blocks_touched) * cost.disk_seek +
            cost.disk_stream(b.scan.bytes_read) +
            cost.scan(b.scan.records_scanned));
  stage("rollup", cost.merge(b.synthesis_merges));
  // "cell_merge", not "merge": the front-end gather span owns that name.
  stage("cell_merge",
        cost.merge(b.cells_from_cache + b.cells_scanned + b.cells_synthesized));
}

sim::SimTime StashCluster::maintenance_time(const MaintenanceStats& m) const {
  const auto& cost = config_.cost;
  return cost.cell_inserts(m.cells_absorbed) +
         cost.freshness_updates(m.freshness_updates) +
         cost.cell_inserts(m.cells_evicted / 4);  // eviction is cheaper than insert
}

std::vector<ChunkKey> StashCluster::subquery_chunks(
    const AggregationQuery& query, const std::string& partition) const {
  std::vector<ChunkKey> out;
  const BoundingBox clipped = query.area.intersection(geohash::decode(partition));
  if (!clipped.valid()) return out;
  const int chunk_prec = chunk_spatial_precision(query.res.spatial,
                                                 config_.stash.chunk_precision);
  const auto bins = temporal_covering(query.time, query.res.temporal);
  for (const auto& prefix : geohash::covering(clipped, chunk_prec))
    for (const auto& bin : bins) out.emplace_back(prefix, bin);
  return out;
}

void StashCluster::submit(const AggregationQuery& query, RichCallback done) {
  submit_impl(query, nullptr, std::move(done));
}

void StashCluster::submit(const AggregationQuery& query, Callback done) {
  submit_impl(query, std::move(done), nullptr);
}

void StashCluster::submit_impl(const AggregationQuery& query, Callback done,
                               RichCallback done_rich) {
  if (!query.valid()) throw std::invalid_argument("StashCluster: invalid query");
  const std::uint64_t id = next_query_id_++;
  Pending pending;
  pending.query = query;
  pending.done = std::move(done);
  pending.done_rich = std::move(done_rich);
  pending.stats.query_id = id;
  pending.stats.submitted_at = loop_.now();
  pending.root_span = tracer_.start_trace(id, "query", loop_.now());
  pending.scatter_span =
      tracer_.start_span(id, pending.root_span, "scatter", loop_.now());
  if (config_.query_deadline > 0) {
    pending.deadline = loop_.now() + config_.query_deadline;
    pending.stats.deadline = pending.deadline;
    tracer_.tag(id, pending.root_span, "deadline_us",
                std::to_string(pending.deadline));
  }
  pending.retry_tokens = config_.retry_budget;
  const auto partitions =
      geohash::covering(query.area, config_.partition_prefix_length);
  pending.remaining = partitions.size();
  pending.stats.subqueries = partitions.size();
  pending.subqueries.reserve(partitions.size());
  pending.stats.coverage.reserve(partitions.size());
  for (const auto& partition : partitions) {
    Subquery sq;
    sq.partition = partition;
    pending.subqueries.push_back(std::move(sq));
    PartitionCoverage cov;
    cov.partition = partition;
    cov.served_res = query.res;
    pending.stats.coverage.push_back(std::move(cov));
  }
  pending_.emplace(id, std::move(pending));
  if (config_.query_deadline > 0) {
    pending_.find(id)->second.deadline_timer = loop_.schedule_cancellable(
        config_.query_deadline, [this, id] { on_query_deadline(id); });
  }
  for (std::size_t i = 0; i < partitions.size(); ++i) start_attempt(id, i);
  if (partitions.empty()) {
    // Degenerate covering: complete with an empty payload instead of
    // leaking a Pending entry that quiescence can never drain.
    pending_.find(id)->second.remaining = 1;
    complete_subquery(id);
  }
}

void StashCluster::start_attempt(std::uint64_t query_id, std::size_t idx) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  Subquery& sq = pending.subqueries[idx];
  if (sq.done) return;
  ++sq.attempts;
  const int attempt = sq.attempts;
  if (attempt == 1) {
    sq.span = tracer_.start_span(query_id, pending.scatter_span,
                                 "subquery " + sq.partition, loop_.now());
  }
  if (attempt > 1) {
    counters_.subquery_retries.inc();
    ++pending.stats.retries;
  }
  sq.forwarded_to.reset();

  // Handoff-aware routing: while a rebalance move is in flight the *old*
  // owner keeps answering; the instant the move flips, the ring owner
  // does.  A query racing the flip is answered by whichever side holds the
  // handoff — never neither.
  const NodeId owner = serving_owner(sq.partition);
  NodeId target = owner;
  if (config_.failover_to_successor && !reachable(owner)) {
    // The owner's partition lives on durable storage every node can reach,
    // so the next live ring successor re-scans it from disk.  Liveness is
    // the gossip view plus the timeout circuit breaker: a partitioned or
    // dead owner is routed around before paying a single timeout.
    const std::uint32_t ring_size =
        static_cast<std::uint32_t>(dht_.ring().members.size());
    // k = 0 is the ring owner itself — normally `owner`, but during a
    // handoff it is the pulling side, the best possible failover target.
    for (std::uint32_t k = 0; k < ring_size; ++k) {
      const NodeId candidate = dht_.successor_for_partition(sq.partition, k);
      if (candidate != owner && reachable(candidate)) {
        target = candidate;
        break;
      }
    }
  }
  if (target != owner) {
    counters_.failovers.inc();
    ++pending.stats.failovers;
  }
  sq.target = target;
  sq.attempt_span = tracer_.start_span(
      query_id, sq.span, "attempt " + std::to_string(attempt), loop_.now());
  tracer_.tag(query_id, sq.attempt_span, "target", std::to_string(target));
  if (target != owner)
    tracer_.tag(query_id, sq.attempt_span, "failover", "true");

  // Deadline propagation: an attempt only gets the query's remaining
  // budget, so a retry near the deadline times out (and is reaped by the
  // deadline timer) instead of outliving the query.
  sim::SimTime timeout = config_.subquery_timeout;
  if (pending.deadline != 0) {
    const sim::SimTime remaining = pending.deadline - loop_.now();
    if (remaining <= 0) return;  // the deadline timer owns this cut
    timeout = timeout > 0 ? std::min(timeout, remaining) : remaining;
  }
  if (timeout > 0) {
    sq.timeout = loop_.schedule_cancellable(
        timeout, [this, query_id, idx, attempt] {
          on_subquery_timeout(query_id, idx, attempt);
        });
  }
  // Rerouting to a guest helper only makes sense at the partition's owner:
  // a failover successor serves from storage.
  const bool allow_reroute = target == owner;
  send_message(sim::kFrontendNode, target, config_.request_bytes,
               [this, query_id, idx, attempt, target, allow_reroute] {
                 route_subquery(query_id, idx, attempt, target, allow_reroute);
               });
}

void StashCluster::on_subquery_timeout(std::uint64_t query_id, std::size_t idx,
                                       int attempt) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Subquery& sq = it->second.subqueries[idx];
  if (sq.done || sq.attempts != attempt) return;
  sq.timeout = 0;
  counters_.timeouts_fired.inc();
  handle_attempt_failure(query_id, idx, attempt, "timeout",
                         /*suspect_target=*/true);
}

sim::SimTime StashCluster::retry_delay(int attempts) {
  // Exponential backoff, doubled until the clamp so a large attempt count
  // can never overflow past it (satellite fix: 2^(k-1) * retry_backoff was
  // unbounded).
  sim::SimTime delay = config_.retry_backoff;
  for (int i = 1; i < attempts; ++i) {
    if (config_.max_retry_backoff > 0 && delay >= config_.max_retry_backoff)
      break;
    delay <<= 1;
  }
  if (config_.max_retry_backoff > 0)
    delay = std::min(delay, config_.max_retry_backoff);
  if (config_.retry_jitter > 0.0) {
    const double factor =
        1.0 + config_.retry_jitter * frontend_rng_.uniform(-1.0, 1.0);
    delay = std::max<sim::SimTime>(
        0, static_cast<sim::SimTime>(static_cast<double>(delay) * factor));
  }
  return delay;
}

void StashCluster::handle_attempt_failure(std::uint64_t query_id,
                                          std::size_t idx, int attempt,
                                          const char* reason,
                                          bool suspect_target) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  Subquery& sq = pending.subqueries[idx];
  if (sq.done || sq.attempts != attempt) return;
  if (sq.timeout != 0) {
    loop_.cancel(sq.timeout);
    sq.timeout = 0;
  }
  // At or past the deadline the cut belongs to the deadline timer, which
  // fires at this same instant and reports the whole query honestly.
  if (pending.deadline != 0 && loop_.now() >= pending.deadline) return;
  tracer_.tag(query_id, sq.attempt_span, "outcome", reason);
  tracer_.end_span(query_id, sq.attempt_span, loop_.now());
  if (suspect_target) {
    // Open the circuit breaker: later attempts (and other queries) route
    // around the silent node instead of paying the timeout again.
    suspect(sq.target);
    if (sq.forwarded_to.has_value()) {
      suspect(*sq.forwarded_to);
      // The owner's routing entries point at a helper that went dark:
      // invalidate them so the retry (and every later query) stays local.
      if (fault_.alive(sq.target))
        nodes_[sq.target]->routing.drop_helper(*sq.forwarded_to);
    }
  }
  if (sq.attempts >= config_.subquery_max_attempts) {
    fail_subquery(query_id, idx);
    return;
  }
  const sim::SimTime delay = retry_delay(sq.attempts);
  if (pending.deadline != 0 && loop_.now() + delay >= pending.deadline) {
    // The retry could never answer in time: fail now instead of queueing
    // work whose response nobody will read.
    tracer_.tag(query_id, sq.span, "retry_abandoned", "deadline");
    fail_subquery(query_id, idx);
    return;
  }
  if (config_.retry_budget > 0) {
    // Per-query token bucket: retries beyond the budget are suppressed so
    // they can never multiply offered load past a configured factor (the
    // metastable-retry-storm guard).
    if (pending.retry_tokens < 1.0) {
      counters_.retries_suppressed.inc();
      tracer_.tag(query_id, sq.span, "retry_suppressed", "budget");
      fail_subquery(query_id, idx);
      return;
    }
    pending.retry_tokens -= 1.0;
  }
  loop_.schedule(delay,
                 [this, query_id, idx] { start_attempt(query_id, idx); });
}

void StashCluster::handle_server_pushback(NodeId node_id,
                                          std::uint64_t query_id,
                                          std::size_t idx, int attempt,
                                          sim::Outcome outcome, bool guest) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  Subquery& sq = pending.subqueries[idx];
  if (sq.done || sq.attempts != attempt) return;

  if (outcome == sim::Outcome::kDropped) {
    // The node crashed with our job aboard.  reset() notifying is the
    // whole point of the drop outcome: the front-end reacts immediately
    // (connection-reset semantics) instead of waiting out the timeout.
    suspect(node_id);
    if (sq.forwarded_to.has_value() && *sq.forwarded_to == node_id &&
        fault_.alive(sq.target))
      nodes_[sq.target]->routing.drop_helper(node_id);
    handle_attempt_failure(query_id, idx, attempt, "dropped",
                           /*suspect_target=*/false);
    return;
  }

  const bool shed = outcome == sim::Outcome::kShed;
  if (shed)
    counters_.subqueries_shed.inc();
  else
    counters_.subqueries_expired.inc();
  ++pending.stats.shed_subqueries;
  const char* cause = shed ? "shed" : "expired";
  tracer_.tag(query_id, sq.attempt_span, "pushback", cause);

  // Admission control pushed back.  A coarse cached answer beats both a
  // retry (more load on a node that just said "too busy") and a hole in
  // the result: serve the nearest PLM-complete ancestor level if the node
  // has one.  Guest helpers skip this — their graph holds only the hot
  // Clique, so the owner (via the retry path) is the better bet.
  if (!guest && config_.degraded_answers &&
      config_.mode != SystemMode::Basic && fault_.alive(node_id)) {
    Node& node = *nodes_[node_id];
    auto deg = std::make_shared<DegradedEvaluation>(
        node.engine.evaluate_degraded(sq.partition, pending.query));
    if (deg->found) {
      // Assembling from cache is the cheap path, but not free: charge the
      // PLM probes and per-cell merge before the response leaves the node.
      // It bypasses the worker queue by design — shedding exists precisely
      // so this fallback never waits behind the overload that caused it.
      const sim::SimTime synth =
          config_.cost.cache_probes(deg->eval.breakdown.cache_probes) +
          config_.cost.merge(deg->eval.cells.size());
      const std::size_t bytes =
          deg->eval.cells.size() * config_.response_cell_bytes + 128;
      loop_.schedule(synth, [this, node_id, bytes, query_id, idx, attempt,
                             deg, cause] {
        if (!fault_.alive(node_id)) return;  // died before it could answer
        send_message(node_id, sim::kFrontendNode, bytes,
                     [this, query_id, idx, attempt, deg, cause] {
                       deliver_degraded(query_id, idx, attempt, deg, cause);
                     });
      });
      return;
    }
  }
  // Nothing cached to degrade to: the rejection travels back to the
  // front-end as a cheap NACK and the normal retry machinery takes over.
  send_message(node_id, sim::kFrontendNode, kAckBytes,
               [this, query_id, idx, attempt, cause] {
                 handle_attempt_failure(query_id, idx, attempt, cause,
                                        /*suspect_target=*/false);
               });
}

void StashCluster::deliver_degraded(
    std::uint64_t query_id, std::size_t idx, int attempt,
    const std::shared_ptr<DegradedEvaluation>& deg, const char* cause) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  Subquery& sq = pending.subqueries[idx];
  if (sq.done || sq.attempts != attempt) return;  // late duplicate: ignore
  sq.done = true;
  if (sq.timeout != 0) {
    loop_.cancel(sq.timeout);
    sq.timeout = 0;
  }
  // coarsening_steps == 0 means the node's cache held the *exact* level in
  // full — the shed job would have produced this very answer.
  const bool exact = deg->coarsening_steps == 0;
  tracer_.tag(query_id, sq.attempt_span, "outcome",
              exact ? "ok" : "degraded");
  tracer_.tag(query_id, sq.attempt_span, "cause", cause);
  tracer_.end_span(query_id, sq.attempt_span, loop_.now());
  tracer_.tag(query_id, sq.span, "cells",
              std::to_string(deg->eval.cells.size()));
  tracer_.tag(query_id, sq.span, "attempts", std::to_string(sq.attempts));
  if (!exact) {
    tracer_.tag(query_id, sq.span, "served_res", deg->served_res.to_string());
    tracer_.tag(query_id, sq.span, "coarsening_steps",
                std::to_string(deg->coarsening_steps));
  }
  tracer_.end_span(query_id, sq.span, loop_.now());
  absolve(sq.target);  // the node answered: alive, just busy

  PartitionCoverage& cov = pending.stats.coverage[idx];
  cov.kind = exact ? PartitionCoverage::Kind::kExact
                   : PartitionCoverage::Kind::kDegraded;
  cov.served_res = deg->served_res;
  cov.attempts = sq.attempts;
  if (!exact) {
    ++pending.stats.degraded_subqueries;
    counters_.degraded_subqueries.inc();
  }
  pending.stats.breakdown += deg->eval.breakdown;
  if (config_.discard_payload) {
    pending.stats.result_cells += deg->eval.cells.size();
  } else {
    for (auto& [key, summary] : deg->eval.cells) {
      auto [cell_it, inserted] =
          pending.cells.try_emplace(key, std::move(summary));
      if (!inserted) cell_it->second.merge(summary);
    }
  }
  complete_subquery(query_id);
}

void StashCluster::on_query_deadline(std::uint64_t query_id) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  pending.deadline_timer = 0;
  // Gather already complete: the merge event is scheduled at or before the
  // deadline (complete_subquery clamps it), so it lands at this same
  // instant — nothing to cut.
  if (pending.remaining == 0) return;
  counters_.deadline_cut_queries.inc();
  for (std::size_t i = 0; i < pending.subqueries.size(); ++i) {
    Subquery& sq = pending.subqueries[i];
    if (sq.done) continue;
    sq.done = true;
    if (sq.timeout != 0) {
      loop_.cancel(sq.timeout);
      sq.timeout = 0;
    }
    if (sq.attempt_span != obs::kNoSpan) {
      tracer_.tag(query_id, sq.attempt_span, "outcome", "deadline");
      tracer_.end_span(query_id, sq.attempt_span, loop_.now());
    }
    tracer_.tag(query_id, sq.span, "outcome", "deadline");
    tracer_.tag(query_id, sq.span, "attempts", std::to_string(sq.attempts));
    tracer_.end_span(query_id, sq.span, loop_.now());
    ++pending.stats.deadline_subqueries;
    counters_.deadline_cut_subqueries.inc();
    pending.stats.coverage[i].attempts = sq.attempts;  // kind stays kMissing
  }
  // Whatever has arrived is the answer: close the scatter, open a
  // zero-width merge (the budget is spent), and hand the result back *at*
  // the deadline, never after it.
  tracer_.end_span(query_id, pending.scatter_span, loop_.now());
  const std::size_t merged_cells = config_.discard_payload
                                       ? pending.stats.result_cells
                                       : pending.cells.size();
  pending.merge_span =
      tracer_.start_span(query_id, pending.root_span, "merge", loop_.now());
  tracer_.tag(query_id, pending.merge_span, "cells",
              std::to_string(merged_cells));
  tracer_.tag(query_id, pending.root_span, "deadline_cut", "true");
  pending.remaining = 0;
  finalize_query(query_id);
}

void StashCluster::fail_subquery(std::uint64_t query_id, std::size_t idx) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  Subquery& sq = pending.subqueries[idx];
  if (sq.done) return;
  sq.done = true;
  if (sq.timeout != 0) {
    loop_.cancel(sq.timeout);
    sq.timeout = 0;
  }
  ++pending.stats.failed_subqueries;
  counters_.failed_subqueries.inc();
  pending.stats.coverage[idx].attempts = sq.attempts;  // kind stays kMissing
  tracer_.tag(query_id, sq.span, "outcome", "failed");
  tracer_.tag(query_id, sq.span, "attempts", std::to_string(sq.attempts));
  tracer_.end_span(query_id, sq.span, loop_.now());
  complete_subquery(query_id);
}

void StashCluster::route_subquery(std::uint64_t query_id, std::size_t idx,
                                  int attempt, NodeId target,
                                  bool allow_reroute) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  Subquery& sq = pending.subqueries[idx];
  if (sq.done || sq.attempts != attempt) return;
  Node& node = *nodes_[target];

  if (config_.mode == SystemMode::Stash && allow_reroute &&
      !node.routing.empty()) {
    const auto chunks = subquery_chunks(pending.query, sq.partition);
    const auto helper = node.routing.lookup(pending.query.res, chunks,
                                            loop_.now(), config_.stash.routing_ttl);
    // Dispatch-time staleness check: a routing entry pointing at a host
    // the owner's own gossip view no longer considers alive is skipped
    // (and the state handler has usually dropped it already).
    if (helper.has_value() && !suspected(*helper) &&
        membership_->usable(target, *helper) &&
        node.rng.bernoulli(config_.stash.reroute_probability)) {
      counters_.reroutes.inc();
      ++pending.stats.rerouted_subqueries;
      tracer_.tag(query_id, sq.attempt_span, "reroute", std::to_string(*helper));
      sq.forwarded_to = *helper;
      send_message(target, *helper, config_.request_bytes,
                   [this, helper = *helper, owner = target, query_id, idx,
                    attempt] {
                     enqueue_guest(helper, owner, query_id, idx, attempt);
                   });
      return;
    }
  }
  enqueue_local(target, query_id, idx, attempt);
}

void StashCluster::enqueue_local(NodeId node_id, std::uint64_t query_id,
                                 std::size_t idx, int attempt) {
  Node& node = *nodes_[node_id];
  const EvalMode mode = config_.mode == SystemMode::Basic ? EvalMode::Basic
                                                          : EvalMode::Cached;
  const auto pit = pending_.find(query_id);
  const sim::SimTime deadline =
      pit != pending_.end() ? pit->second.deadline : 0;
  auto slot = std::make_shared<Evaluation>();
  auto exec_partial = std::make_shared<bool>(false);
  node.server.submit(
      [this, &node, query_id, idx, attempt, mode, slot,
       exec_partial]() -> sim::SimTime {
        const auto it = pending_.find(query_id);
        if (it == pending_.end()) return 0;
        const Subquery& sq = it->second.subqueries[idx];
        if (sq.done || sq.attempts != attempt) return 0;  // superseded
        if (node.exec_engine) {
          // Wall-clock datapath: evaluate under the configured host-time
          // budget.  An expired or fault-hit batch comes back partial;
          // the completion below reroutes it through the PR-4 pushback
          // taxonomy instead of delivering a half answer.
          exec::ExecOptions exec_opts;
          if (config_.exec_deadline_ms > 0)
            exec_opts.deadline_ns = exec::host_now_ns() +
                                    config_.exec_deadline_ms * 1'000'000ull;
          exec::BatchReport exec_report;
          *slot = node.exec_engine->evaluate_partition(
              sq.partition, it->second.query, mode, exec_opts, exec_report);
          *exec_partial = !exec_report.complete();
        } else {
          *slot = node.engine.evaluate_partition(sq.partition,
                                                 it->second.query, mode);
        }
        return service_time(slot->breakdown);
      },
      [this, &node, query_id, idx, attempt, slot,
       exec_partial](sim::Outcome outcome) {
        if (outcome != sim::Outcome::kOk) {
          handle_server_pushback(node.id, query_id, idx, attempt, outcome,
                                 /*guest=*/false);
          return;
        }
        if (*exec_partial) {
          // The wall-clock engine gave up on its deadline (or quarantined
          // a faulted chunk): same taxonomy as a queue-expired job —
          // degraded cached ancestor if resident, else the retry path.
          handle_server_pushback(node.id, query_id, idx, attempt,
                                 sim::Outcome::kDeadlineExceeded,
                                 /*guest=*/false);
          return;
        }
        counters_.subqueries_processed.inc();
        const auto it = pending_.find(query_id);
        if (it == pending_.end()) return;
        const Subquery& sq = it->second.subqueries[idx];
        if (sq.done || sq.attempts != attempt) return;
        subquery_service_us_.observe(
            static_cast<double>(service_time(slot->breakdown)));
        record_serve_spans(query_id, sq.attempt_span, node.id, slot->breakdown,
                           /*guest=*/false);
        // Background maintenance: populate the graph off the response path.
        if (config_.mode != SystemMode::Basic &&
            (!slot->fetched.empty() || !slot->touched_chunks.empty())) {
          const Resolution res = it->second.query.res;
          auto maintenance_slot = slot;
          node.maintenance.submit([this, &node, res,
                                   maintenance_slot]() -> sim::SimTime {
            const MaintenanceStats stats =
                node.exec_engine
                    ? node.exec_engine->absorb(*maintenance_slot, res,
                                               loop_.now())
                    : node.engine.absorb(*maintenance_slot, res, loop_.now());
            const sim::SimTime t = maintenance_time(stats);
            counters_.maintenance_tasks.inc();
            counters_.maintenance_time_us.inc(static_cast<std::uint64_t>(t));
            maintenance_service_us_.observe(static_cast<double>(t));
            return t;
          });
        }
        const std::size_t bytes =
            slot->cells.size() * config_.response_cell_bytes + 128;
        send_message(node.id, sim::kFrontendNode, bytes,
                     [this, query_id, idx, attempt, slot]() {
                       deliver_response(query_id, idx, attempt,
                                        std::move(*slot));
                     });
        // Re-check as the queue drains: a *cold* hotspot has nothing to
        // replicate at arrival time, but once maintenance populates the
        // graph a handoff becomes possible.
        maybe_start_handoff(node.id);
      },
      deadline);
  maybe_start_handoff(node_id);
}

void StashCluster::enqueue_guest(NodeId helper_id, NodeId owner_id,
                                 std::uint64_t query_id, std::size_t idx,
                                 int attempt) {
  Node& helper = *nodes_[helper_id];
  const auto pit = pending_.find(query_id);
  const sim::SimTime deadline =
      pit != pending_.end() ? pit->second.deadline : 0;
  auto slot = std::make_shared<Evaluation>();
  helper.server.submit(
      [this, &helper, query_id, idx, attempt, slot]() -> sim::SimTime {
        const auto it = pending_.find(query_id);
        if (it == pending_.end()) return 0;
        const Subquery& sq = it->second.subqueries[idx];
        if (sq.done || sq.attempts != attempt) return 0;
        // Lazily purge idle guest Cliques before serving (§VII-D).
        helper.guest_graph.purge_older_than(loop_.now(), config_.stash.guest_ttl);
        *slot = helper.guest_engine.evaluate_partition(
            sq.partition, it->second.query, EvalMode::CacheOnly);
        return service_time(slot->breakdown);
      },
      [this, &helper, owner_id, query_id, idx, attempt,
       slot](sim::Outcome outcome) {
        if (outcome != sim::Outcome::kOk) {
          handle_server_pushback(helper.id, query_id, idx, attempt, outcome,
                                 /*guest=*/true);
          return;
        }
        counters_.subqueries_processed.inc();
        const auto it = pending_.find(query_id);
        if (it == pending_.end()) return;
        Subquery& sq = it->second.subqueries[idx];
        if (sq.done || sq.attempts != attempt) return;
        subquery_service_us_.observe(
            static_cast<double>(service_time(slot->breakdown)));
        record_serve_spans(query_id, sq.attempt_span, helper.id,
                           slot->breakdown, /*guest=*/true);
        if (slot->breakdown.chunks_missing > 0) {
          // Replica purged or incomplete: fall back to the owning node
          // (no further rerouting to avoid a loop).  The helper answered,
          // so it is no longer the one a timeout should blame.
          counters_.guest_fallbacks.inc();
          tracer_.tag(query_id, sq.attempt_span, "guest_fallback",
                      std::to_string(owner_id));
          sq.forwarded_to.reset();
          send_message(helper.id, owner_id, config_.request_bytes,
                       [this, owner_id, query_id, idx, attempt] {
                         enqueue_local(owner_id, query_id, idx, attempt);
                       });
          return;
        }
        // Keep served guest regions fresh so the TTL purge spares them.
        const Resolution res = it->second.query.res;
        helper.guest_engine.absorb(*slot, res, loop_.now());
        const std::size_t bytes =
            slot->cells.size() * config_.response_cell_bytes + 128;
        send_message(helper.id, sim::kFrontendNode, bytes,
                     [this, query_id, idx, attempt, slot]() {
                       deliver_response(query_id, idx, attempt,
                                        std::move(*slot));
                     });
      },
      deadline);
}

void StashCluster::deliver_response(std::uint64_t query_id, std::size_t idx,
                                    int attempt, Evaluation&& eval) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  Subquery& sq = pending.subqueries[idx];
  if (sq.done || sq.attempts != attempt) return;  // late duplicate: ignore
  sq.done = true;
  if (sq.timeout != 0) {
    loop_.cancel(sq.timeout);
    sq.timeout = 0;
  }
  tracer_.tag(query_id, sq.attempt_span, "outcome", "ok");
  tracer_.end_span(query_id, sq.attempt_span, loop_.now());
  tracer_.tag(query_id, sq.span, "cells", std::to_string(eval.cells.size()));
  tracer_.tag(query_id, sq.span, "attempts", std::to_string(sq.attempts));
  if (!eval.corrupt_blocks.empty()) {
    // A scanned block failed its checksum: the day's records were withheld
    // (never merged, never absorbed), so the answer has an honest hole.
    pending.stats.corrupt_blocks += eval.corrupt_blocks.size();
    tracer_.tag(query_id, sq.span, "corrupt_blocks",
                std::to_string(eval.corrupt_blocks.size()));
  }
  tracer_.end_span(query_id, sq.span, loop_.now());
  // Evidence of life closes the circuit breaker.
  absolve(sq.target);
  if (sq.forwarded_to.has_value()) absolve(*sq.forwarded_to);
  // An exact success refills the retry token bucket (capped at the initial
  // budget): a mostly-healthy query keeps its ability to retry stragglers.
  if (config_.retry_budget > 0)
    pending.retry_tokens =
        std::min(config_.retry_budget,
                 pending.retry_tokens + config_.retry_refill_per_success);
  PartitionCoverage& cov = pending.stats.coverage[idx];
  cov.kind = PartitionCoverage::Kind::kExact;
  cov.served_res = pending.query.res;
  cov.attempts = sq.attempts;

  pending.stats.breakdown += eval.breakdown;
  if (config_.discard_payload) {
    // Cells are disjoint across partitions: counting is exact.
    pending.stats.result_cells += eval.cells.size();
  } else {
    for (auto& [key, summary] : eval.cells) {
      auto [cell_it, inserted] =
          pending.cells.try_emplace(key, std::move(summary));
      if (!inserted) cell_it->second.merge(summary);
    }
  }
  complete_subquery(query_id);
}

void StashCluster::complete_subquery(std::uint64_t query_id) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  if (--pending.remaining > 0) return;
  // Gather complete: charge the front-end merge + render overhead.  Under
  // a deadline the charge is clamped to the remaining budget — the result
  // is handed back at the deadline at the latest, never after it.
  const std::size_t merged_cells = config_.discard_payload
                                       ? pending.stats.result_cells
                                       : pending.cells.size();
  sim::SimTime finish =
      config_.frontend_overhead + config_.cost.merge(merged_cells);
  if (pending.deadline != 0)
    finish = std::min(
        finish, std::max<sim::SimTime>(0, pending.deadline - loop_.now()));
  // Scatter is over the instant the last subquery drains; the merge span
  // covers the front-end merge + render and ends with the root, so
  // scatter.duration + merge.duration == QueryStats::latency().
  tracer_.end_span(query_id, pending.scatter_span, loop_.now());
  pending.merge_span =
      tracer_.start_span(query_id, pending.root_span, "merge", loop_.now());
  tracer_.tag(query_id, pending.merge_span, "cells",
              std::to_string(merged_cells));
  loop_.schedule(finish, [this, query_id] { finalize_query(query_id); });
}

void StashCluster::finalize_query(std::uint64_t query_id) {
  const auto done_it = pending_.find(query_id);
  if (done_it == pending_.end()) return;
  Pending finished = std::move(done_it->second);
  pending_.erase(done_it);
  if (finished.deadline_timer != 0) loop_.cancel(finished.deadline_timer);
  finished.stats.completed_at = loop_.now();
  if (!config_.discard_payload)
    finished.stats.result_cells = finished.cells.size();
  if (finished.stats.corrupt_blocks > 0) {
    // Corrupt days were withheld, never served wrong: the answer has holes
    // and must say so.
    finished.stats.partial = true;
    counters_.corrupt_queries.inc();
  }
  if (finished.stats.failed_subqueries > 0 ||
      finished.stats.deadline_subqueries > 0)
    finished.stats.partial = true;
  if (finished.stats.partial) counters_.partial_queries.inc();
  if (finished.stats.degraded_subqueries > 0) {
    finished.stats.degraded = true;
    counters_.degraded_queries.inc();
  }
  counters_.queries_completed.inc();
  query_latency_us_.observe(static_cast<double>(finished.stats.latency()));
  tracer_.end_span(query_id, finished.merge_span, loop_.now());
  tracer_.tag(query_id, finished.root_span, "result_cells",
              std::to_string(finished.stats.result_cells));
  tracer_.tag(query_id, finished.root_span, "subqueries",
              std::to_string(finished.stats.subqueries));
  if (finished.stats.partial)
    tracer_.tag(query_id, finished.root_span, "partial", "true");
  if (finished.stats.degraded)
    tracer_.tag(query_id, finished.root_span, "degraded", "true");
  if (finished.stats.corrupt_blocks > 0)
    tracer_.tag(query_id, finished.root_span, "corrupt_blocks",
                std::to_string(finished.stats.corrupt_blocks));
  tracer_.end_span(query_id, finished.root_span, loop_.now());
  if (finished.done) finished.done(finished.stats);
  if (finished.done_rich)
    finished.done_rich(finished.stats, std::move(finished.cells));
}

void StashCluster::maybe_start_handoff(NodeId node_id) {
  if (config_.mode != SystemMode::Stash) return;
  Node& node = *nodes_[node_id];
  if (node.server.queue_length() <= config_.stash.hotspot_queue_threshold) return;
  if (loop_.now() - node.last_handoff < config_.stash.hotspot_cooldown) return;
  // Back off briefly between attempts so a saturated node does not run
  // clique selection on every enqueue.
  if (loop_.now() - node.last_handoff_attempt < 2 * sim::kMillisecond) return;
  node.last_handoff_attempt = loop_.now();

  const CliqueSelector selector(node.graph);
  auto cliques = selector.select_top(loop_.now(),
                                     config_.stash.max_replicated_cells,
                                     config_.stash.max_cliques_per_handoff,
                                     config_.stash.clique_depth);
  // A cold hotspot (nothing cached yet) has nothing to replicate; do not
  // burn the cooldown — retry once maintenance has populated the graph.
  if (cliques.empty()) return;
  node.last_handoff = loop_.now();
  counters_.handoffs_initiated.inc();
  for (auto& clique : cliques) send_distress(node_id, std::move(clique), 0);
}

void StashCluster::send_distress(NodeId hot_id, Clique clique, int attempt) {
  if (attempt > config_.antipode_retries) {
    counters_.distress_rejections.inc();
    return;
  }
  if (!fault_.alive(hot_id)) return;  // the hot node died: abandon the handoff
  Node& hot = *nodes_[hot_id];
  // Antipode selection (§VII-B.3): first try the node owning the region
  // diametrically opposite the Clique; on rejection wander randomly around
  // that antipode.  (HelperPolicy::Neighbor is the related-work ablation:
  // replicate to a node owning an adjacent region instead.)
  std::string target_gh;
  if (config_.helper_policy == HelperPolicy::Antipode) {
    target_gh = geohash::antipode(clique.root.prefix_str());
  } else {
    const auto east =
        geohash::neighbor(clique.root.prefix_str(), geohash::Direction::E);
    target_gh = east.value_or(geohash::antipode(clique.root.prefix_str()));
  }
  for (int i = 0; i < attempt; ++i) {
    const auto neighbors = geohash::neighbors(target_gh);
    target_gh = neighbors[hot.rng.next_below(neighbors.size())];
  }
  const NodeId target = dht_.node_for(target_gh);
  if (target == hot_id) {
    send_distress(hot_id, std::move(clique), attempt + 1);
    return;
  }
  if (suspected(target) || !membership_->usable(hot_id, target)) {
    // Circuit breaker / gossip view: a believed-dead helper is a free
    // NACK — keep wandering instead of paying the handoff timeout.
    send_distress(hot_id, std::move(clique), attempt + 1);
    return;
  }

  // Watchdog for the whole Distress -> Ack -> Replication -> Response
  // round: a dead helper or a lost message is treated as a NACK and the
  // antipode retry continues.
  auto settled = std::make_shared<bool>(false);
  sim::EventLoop::EventId watchdog = 0;
  if (config_.handoff_timeout > 0) {
    watchdog = loop_.schedule_cancellable(
        config_.handoff_timeout,
        [this, hot_id, target, clique, attempt, settled] {
          if (*settled) return;
          *settled = true;
          counters_.timeouts_fired.inc();
          counters_.handoff_timeouts.inc();
          suspect(target);
          if (fault_.alive(hot_id)) {
            nodes_[hot_id]->routing.drop_helper(target);
            send_distress(hot_id, clique, attempt + 1);
          }
        });
  }
  const auto settle = [this, settled, watchdog] {
    *settled = true;
    if (watchdog != 0) loop_.cancel(watchdog);
  };

  // Distress Request: hot -> helper.
  send_message(
      hot_id, target, config_.request_bytes,
      [this, hot_id, target, clique = std::move(clique), attempt, settled,
       settle]() mutable {
        Node& helper = *nodes_[target];
        const bool accept =
            helper.server.queue_length() <=
                config_.stash.hotspot_queue_threshold &&
            helper.guest_graph.total_cells() + clique.cell_count <=
                config_.stash.guest_capacity_cells;
        if (!accept) {
          // Negative acknowledgement: helper -> hot, retry on arrival.
          send_message(target, hot_id, kAckBytes,
                       [this, hot_id, clique = std::move(clique), attempt,
                        settled, settle]() mutable {
                         if (*settled) return;
                         settle();
                         counters_.distress_rejections.inc();
                         send_distress(hot_id, std::move(clique), attempt + 1);
                       });
          return;
        }
        // Positive ack: helper -> hot; on arrival the hot node ships the
        // Clique's Cells, encoded with the real wire codec so transfer
        // time reflects actual bytes.
        send_message(
            target, hot_id, kAckBytes,
            [this, hot_id, target, clique = std::move(clique), settled,
             settle]() mutable {
              if (*settled) return;
              Node& hot_node = *nodes_[hot_id];
              const auto payload = clique_payload(hot_node.graph, clique);
              std::size_t cells = 0;
              for (const auto& c : payload) cells += c.cells.size();
              codec::Buffer wire = codec::encode_replication_frame(payload);
              // Replication Request: hot -> helper, inside a checksummed
              // frame — a bit-flip or tear en route is detected and
              // redelivered, never absorbed into the guest graph.
              send_frame(
                  hot_id, target, std::move(wire),
                  [this, hot_id, target, clique = std::move(clique), cells,
                   settled, settle](codec::Buffer&& bytes) mutable {
                    Node& helper_node = *nodes_[target];
                    std::vector<ChunkContribution> contributions;
                    try {
                      contributions =
                          codec::decode_replication_payload(bytes);
                    } catch (const std::exception&) {
                      // Checksum-valid but structurally bad: a sender-side
                      // encoding bug, not line noise.  Quarantine (drop),
                      // never absorb garbage.
                      counters_.poison_messages.inc();
                      return;
                    }
                    for (const auto& contribution : contributions)
                      helper_node.guest_graph.absorb(contribution, loop_.now());
                    counters_.cliques_replicated.inc();
                    counters_.cells_replicated.inc(cells);
                    // Replication Response: helper -> hot populates the
                    // routing table (§VII-B.5).
                    send_message(
                        target, hot_id, kAckBytes,
                        [this, hot_id, target, clique = std::move(clique),
                         settled, settle] {
                          if (*settled) return;
                          settle();
                          Node& hot_after = *nodes_[hot_id];
                          for (const auto& member : clique.members)
                            hot_after.routing.add(member.res, member.chunk,
                                                  target, loop_.now());
                        });
                  },
                  /*background=*/false, config_.max_redeliveries);
            });
      });
}

void StashCluster::check_quiescence() const {
#ifdef STASH_AUDIT
  // Satellite guard: every message offered to the network must have rolled
  // the fault injector's drop dice exactly once — a skipped or double
  // should_drop() desynchronizes the deterministic fault stream.
  if (fault_.stats().drop_checks != messages_sent_)
    throw std::logic_error(
        "StashCluster: fault drop_checks (" +
        std::to_string(fault_.stats().drop_checks) + ") != messages sent (" +
        std::to_string(messages_sent_) + ")");
#endif
  if (pending_.empty()) return;
  throw std::runtime_error(
      "StashCluster: " + std::to_string(pending_.size()) +
      " quer(y/ies) survived quiescence — a subquery was lost and never "
      "timed out; enable subquery_timeout or fix the scatter/gather path");
}

QueryStats StashCluster::run_query(const AggregationQuery& query,
                                   CellSummaryMap* cells_out) {
  QueryStats out;
  submit(query, [&out, cells_out](const QueryStats& stats, CellSummaryMap&& cells) {
    out = stats;
    if (cells_out != nullptr) *cells_out = std::move(cells);
  });
  loop_.run();
  check_quiescence();
  return out;
}

std::vector<QueryStats> StashCluster::run_burst(
    const std::vector<AggregationQuery>& queries) {
  std::vector<QueryStats> out(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i)
    submit(queries[i], [&out, i](const QueryStats& stats) { out[i] = stats; });
  loop_.run();
  check_quiescence();
  return out;
}

std::vector<QueryStats> StashCluster::run_open_loop(
    const std::vector<AggregationQuery>& queries, sim::SimTime interarrival) {
  std::vector<QueryStats> out(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    loop_.schedule(static_cast<sim::SimTime>(i) * interarrival,
                   [this, &out, i, query = queries[i]] {
                     submit(query, [&out, i](const QueryStats& stats) {
                       out[i] = stats;
                     });
                   });
  }
  loop_.run();
  check_quiescence();
  return out;
}

std::vector<QueryStats> StashCluster::run_sequence(
    const std::vector<AggregationQuery>& queries) {
  std::vector<QueryStats> out(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    submit(queries[i], [&out, i](const QueryStats& stats) { out[i] = stats; });
    loop_.run();
    check_quiescence();
  }
  return out;
}

const StashGraph& StashCluster::node_graph(NodeId id) const {
  return nodes_.at(id)->graph;
}

const StashGraph& StashCluster::node_guest_graph(NodeId id) const {
  return nodes_.at(id)->guest_graph;
}

const RoutingTable& StashCluster::node_routing(NodeId id) const {
  return nodes_.at(id)->routing;
}

std::size_t StashCluster::node_queue_length(NodeId id) const {
  return nodes_.at(id)->server.queue_length();
}

std::size_t StashCluster::total_cached_cells() const {
  std::size_t total = 0;
  for (const auto& node : nodes_) total += node->graph.total_cells();
  return total;
}

std::size_t StashCluster::total_guest_cells() const {
  std::size_t total = 0;
  for (const auto& node : nodes_) total += node->guest_graph.total_cells();
  return total;
}

AuditReport StashCluster::audit_all(AuditOptions options) const {
  if (!options.now) options.now = loop_.now();
  const GraphAuditor auditor(options);
  AuditReport total;
  for (const auto& node : nodes_) {
    const auto annotate = [&](AuditReport&& report, const char* which) {
      for (auto& v : report.violations)
        v.detail = "node " + std::to_string(node->id) + " " + which + ": " +
                   v.detail;
      total.merge(std::move(report));
    };
    annotate(auditor.audit(node->graph), "graph");
    annotate(auditor.audit(node->guest_graph), "guest");
    annotate(auditor.audit_routing(node->routing,
                                   static_cast<std::uint32_t>(nodes_.size()),
                                   node->id),
             "routing");
  }
  // Epoch-aware membership checks: the installed ring is structurally
  // sound, and every in-flight handoff record agrees with it — planned
  // under the current epoch, genuinely moving (from != to), and pointing
  // at the member the ring says now owns the partition.  Together with the
  // single moves_ map (presence == old owner serves, absence == ring owner
  // serves) this is the no-partition-double-owned / none-lost invariant.
  total.merge(auditor.audit_ring(dht_.ring(),
                                 static_cast<std::uint32_t>(nodes_.size())));
  for (const auto& [partition, move] : moves_) {
    const auto bad = [&](const std::string& why) {
      total.violations.push_back(
          {AuditViolationKind::RingInconsistent,
           "move " + partition + " (" + std::to_string(move.from) + " -> " +
               std::to_string(move.to) + ", epoch " +
               std::to_string(move.epoch) + "): " + why});
    };
    if (move.epoch != dht_.epoch())
      bad("stale epoch (installed " + std::to_string(dht_.epoch()) + ")");
    if (move.from == move.to) bad("does not move ownership");
    if (dht_.node_for_partition(partition) != move.to)
      bad("target is not the installed epoch's owner (" +
          std::to_string(dht_.node_for_partition(partition)) + ")");
  }
  return total;
}

std::size_t StashCluster::preload(const AggregationQuery& query) {
  std::size_t inserted = 0;
  for (const auto& partition :
       geohash::covering(query.area, config_.partition_prefix_length)) {
    // Warm whoever is *serving* the partition — mid-handoff that is still
    // the old owner, and warming anyone else would be wasted work.
    const NodeId owner = serving_owner(partition);
    if (!fault_.alive(owner)) continue;  // a dead node cannot warm its cache
    Node& node = *nodes_[owner];
    const Evaluation eval =
        node.exec_engine
            ? node.exec_engine->evaluate_partition(partition, query,
                                                   EvalMode::Cached)
            : node.engine.evaluate_partition(partition, query,
                                             EvalMode::Cached);
    const MaintenanceStats stats =
        node.exec_engine
            ? node.exec_engine->absorb(eval, query.res, loop_.now())
            : node.engine.absorb(eval, query.res, loop_.now());
    inserted += stats.cells_absorbed;
  }
  return inserted;
}

void StashCluster::clear_caches() {
  for (auto& node : nodes_) {
    node->graph.clear();
    node->guest_graph.clear();
    node->routing.purge(loop_.now() + config_.stash.routing_ttl * 2,
                        config_.stash.routing_ttl);
  }
}

void StashCluster::invalidate_block(const std::string& partition,
                                    std::int64_t day) {
  for (auto& node : nodes_) {
    node->graph.invalidate_block(partition, day);
    node->guest_graph.invalidate_block(partition, day);
  }
}

std::uint64_t StashCluster::ingest_update(const std::string& partition,
                                          std::int64_t day) {
  const std::uint64_t version = store_.ingest_update(BlockKey{partition, day});
  invalidate_block(partition, day);
  return version;
}

}  // namespace stash::cluster
