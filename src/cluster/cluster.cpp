#include "cluster/cluster.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/codec.hpp"

namespace stash::cluster {

namespace {
constexpr sim::SimTime kNeverSuspected =
    std::numeric_limits<sim::SimTime>::min();
constexpr std::size_t kAckBytes = 64;  // Ack / NACK / Replication Response
}  // namespace

StashCluster::Node::Node(NodeId node_id, const StashConfig& stash_config,
                         const GalileoStore& store, sim::EventLoop& loop,
                         int workers, std::uint64_t seed)
    : id(node_id),
      graph(stash_config),
      guest_graph(stash_config),
      engine(graph, store),
      guest_engine(guest_graph, store),
      server(loop, workers),
      maintenance(loop, 1),  // the paper's "separate thread" for population
      last_handoff(std::numeric_limits<sim::SimTime>::min() / 2),
      last_handoff_attempt(std::numeric_limits<sim::SimTime>::min() / 2),
      rng(seed) {}

StashCluster::StashCluster(ClusterConfig config,
                           std::shared_ptr<const NamGenerator> generator)
    : config_(config),
      dht_(config.num_nodes, config.partition_prefix_length),
      fault_(config.fault_plan, config.num_nodes),
      generator_(std::move(generator)),
      store_(generator_, config.partition_prefix_length),
      suspect_until_(config.num_nodes, kNeverSuspected),
      frontend_rng_(config.seed ^ 0x46524f4e54ULL) {
  if (!generator_) throw std::invalid_argument("StashCluster: null generator");
  nodes_.reserve(config_.num_nodes);
  for (NodeId id = 0; id < config_.num_nodes; ++id)
    nodes_.push_back(std::make_unique<Node>(id, config_.stash, store_, loop_,
                                            config_.workers_per_node,
                                            config_.seed ^ mix64(id)));
  // Crash wipes volatile state only — the Galileo store survives, so any
  // node (the owner after restart, or a failover successor) can rebuild
  // answers from disk.  This is the paper's volatile-cache/durable-store
  // split made executable.
  fault_.set_crash_handler([this](std::uint32_t id) {
    wipe_node(id);
    ++metrics_.node_crashes;
  });
  fault_.set_restart_handler([this](std::uint32_t) { ++metrics_.node_restarts; });
  fault_.arm(loop_);
}

void StashCluster::wipe_node(NodeId id) {
  Node& node = *nodes_[id];
  node.graph.clear();
  node.guest_graph.clear();
  node.routing.clear();
  node.server.reset();
  node.maintenance.reset();
  node.last_handoff = std::numeric_limits<sim::SimTime>::min() / 2;
  node.last_handoff_attempt = std::numeric_limits<sim::SimTime>::min() / 2;
}

void StashCluster::crash_node(NodeId id) { fault_.force_crash(id); }

void StashCluster::restart_node(NodeId id) { fault_.force_restart(id); }

bool StashCluster::suspected(NodeId id) const {
  return suspect_until_[id] > loop_.now();
}

bool StashCluster::node_suspected(NodeId id) const {
  if (id >= suspect_until_.size())
    throw std::out_of_range("StashCluster::node_suspected: bad node id");
  return suspected(id);
}

void StashCluster::suspect(NodeId id) {
  suspect_until_[id] = loop_.now() + config_.suspect_ttl;
}

void StashCluster::absolve(NodeId id) { suspect_until_[id] = kNeverSuspected; }

void StashCluster::send_message(std::uint32_t from, std::uint32_t to,
                                std::size_t bytes,
                                std::function<void()> deliver) {
  if (fault_.should_drop(from, to)) {
    ++metrics_.messages_dropped;
    return;
  }
  const sim::SimTime delay =
      config_.cost.net_transfer(bytes) + fault_.extra_latency(from, to);
  loop_.schedule(delay, [this, to, deliver = std::move(deliver)] {
    // A message addressed to a node that died in flight is simply lost;
    // the sender's timeout is the only notification it will ever get.
    if (!fault_.alive(to)) return;
    deliver();
  });
}

sim::SimTime StashCluster::service_time(const EvalBreakdown& b) const {
  const auto& cost = config_.cost;
  sim::SimTime t = config_.subquery_overhead;
  t += cost.cache_probes(b.cache_probes);
  t += static_cast<sim::SimTime>(b.scan.blocks_touched) * cost.disk_seek;
  t += cost.disk_stream(b.scan.bytes_read);
  t += cost.scan(b.scan.records_scanned);
  t += cost.merge(b.synthesis_merges);
  t += cost.merge(b.cells_from_cache + b.cells_scanned + b.cells_synthesized);
  return t;
}

sim::SimTime StashCluster::maintenance_time(const MaintenanceStats& m) const {
  const auto& cost = config_.cost;
  return cost.cell_inserts(m.cells_absorbed) +
         cost.freshness_updates(m.freshness_updates) +
         cost.cell_inserts(m.cells_evicted / 4);  // eviction is cheaper than insert
}

std::vector<ChunkKey> StashCluster::subquery_chunks(
    const AggregationQuery& query, const std::string& partition) const {
  std::vector<ChunkKey> out;
  const BoundingBox clipped = query.area.intersection(geohash::decode(partition));
  if (!clipped.valid()) return out;
  const int chunk_prec = chunk_spatial_precision(query.res.spatial,
                                                 config_.stash.chunk_precision);
  const auto bins = temporal_covering(query.time, query.res.temporal);
  for (const auto& prefix : geohash::covering(clipped, chunk_prec))
    for (const auto& bin : bins) out.emplace_back(prefix, bin);
  return out;
}

void StashCluster::submit(const AggregationQuery& query, RichCallback done) {
  submit_impl(query, nullptr, std::move(done));
}

void StashCluster::submit(const AggregationQuery& query, Callback done) {
  submit_impl(query, std::move(done), nullptr);
}

void StashCluster::submit_impl(const AggregationQuery& query, Callback done,
                               RichCallback done_rich) {
  if (!query.valid()) throw std::invalid_argument("StashCluster: invalid query");
  const std::uint64_t id = next_query_id_++;
  Pending pending;
  pending.query = query;
  pending.done = std::move(done);
  pending.done_rich = std::move(done_rich);
  pending.stats.submitted_at = loop_.now();
  const auto partitions =
      geohash::covering(query.area, config_.partition_prefix_length);
  pending.remaining = partitions.size();
  pending.stats.subqueries = partitions.size();
  pending.subqueries.reserve(partitions.size());
  for (const auto& partition : partitions) {
    Subquery sq;
    sq.partition = partition;
    pending.subqueries.push_back(std::move(sq));
  }
  pending_.emplace(id, std::move(pending));
  for (std::size_t i = 0; i < partitions.size(); ++i) start_attempt(id, i);
  if (partitions.empty()) {
    // Degenerate covering: complete with an empty payload instead of
    // leaking a Pending entry that quiescence can never drain.
    pending_.find(id)->second.remaining = 1;
    complete_subquery(id);
  }
}

void StashCluster::start_attempt(std::uint64_t query_id, std::size_t idx) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  Subquery& sq = pending.subqueries[idx];
  if (sq.done) return;
  ++sq.attempts;
  const int attempt = sq.attempts;
  if (attempt > 1) {
    ++metrics_.subquery_retries;
    ++pending.stats.retries;
  }
  sq.forwarded_to.reset();

  const NodeId owner = dht_.node_for_partition(sq.partition);
  NodeId target = owner;
  if (config_.failover_to_successor && suspected(owner)) {
    // The owner's partition lives on durable storage every node can reach,
    // so the next live ring successor re-scans it from disk.
    for (std::uint32_t k = 1; k < config_.num_nodes; ++k) {
      const NodeId candidate = dht_.successor_for_partition(sq.partition, k);
      if (!suspected(candidate)) {
        target = candidate;
        break;
      }
    }
  }
  if (target != owner) {
    ++metrics_.failovers;
    ++pending.stats.failovers;
  }
  sq.target = target;

  if (config_.subquery_timeout > 0) {
    sq.timeout = loop_.schedule_cancellable(
        config_.subquery_timeout, [this, query_id, idx, attempt] {
          on_subquery_timeout(query_id, idx, attempt);
        });
  }
  // Rerouting to a guest helper only makes sense at the partition's owner:
  // a failover successor serves from storage.
  const bool allow_reroute = target == owner;
  send_message(sim::kFrontendNode, target, config_.request_bytes,
               [this, query_id, idx, attempt, target, allow_reroute] {
                 route_subquery(query_id, idx, attempt, target, allow_reroute);
               });
}

void StashCluster::on_subquery_timeout(std::uint64_t query_id, std::size_t idx,
                                       int attempt) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  Subquery& sq = pending.subqueries[idx];
  if (sq.done || sq.attempts != attempt) return;
  sq.timeout = 0;
  ++metrics_.timeouts_fired;
  // Open the circuit breaker: later attempts (and other queries) route
  // around the silent node instead of paying the timeout again.
  suspect(sq.target);
  if (sq.forwarded_to.has_value()) {
    suspect(*sq.forwarded_to);
    // The owner's routing entries point at a helper that went dark:
    // invalidate them so the retry (and every later query) stays local.
    if (fault_.alive(sq.target))
      nodes_[sq.target]->routing.drop_helper(*sq.forwarded_to);
  }
  if (sq.attempts >= config_.subquery_max_attempts) {
    fail_subquery(query_id, idx);
    return;
  }
  // Exponential backoff with jitter before the next attempt.
  sim::SimTime delay = config_.retry_backoff << (sq.attempts - 1);
  if (config_.retry_jitter > 0.0) {
    const double factor =
        1.0 + config_.retry_jitter * frontend_rng_.uniform(-1.0, 1.0);
    delay = std::max<sim::SimTime>(
        0, static_cast<sim::SimTime>(static_cast<double>(delay) * factor));
  }
  loop_.schedule(delay,
                 [this, query_id, idx] { start_attempt(query_id, idx); });
}

void StashCluster::fail_subquery(std::uint64_t query_id, std::size_t idx) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  Subquery& sq = pending.subqueries[idx];
  if (sq.done) return;
  sq.done = true;
  if (sq.timeout != 0) {
    loop_.cancel(sq.timeout);
    sq.timeout = 0;
  }
  ++pending.stats.failed_subqueries;
  ++metrics_.failed_subqueries;
  complete_subquery(query_id);
}

void StashCluster::route_subquery(std::uint64_t query_id, std::size_t idx,
                                  int attempt, NodeId target,
                                  bool allow_reroute) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  Subquery& sq = pending.subqueries[idx];
  if (sq.done || sq.attempts != attempt) return;
  Node& node = *nodes_[target];

  if (config_.mode == SystemMode::Stash && allow_reroute &&
      !node.routing.empty()) {
    const auto chunks = subquery_chunks(pending.query, sq.partition);
    const auto helper = node.routing.lookup(pending.query.res, chunks,
                                            loop_.now(), config_.stash.routing_ttl);
    if (helper.has_value() && !suspected(*helper) &&
        node.rng.bernoulli(config_.stash.reroute_probability)) {
      ++metrics_.reroutes;
      ++pending.stats.rerouted_subqueries;
      sq.forwarded_to = *helper;
      send_message(target, *helper, config_.request_bytes,
                   [this, helper = *helper, owner = target, query_id, idx,
                    attempt] {
                     enqueue_guest(helper, owner, query_id, idx, attempt);
                   });
      return;
    }
  }
  enqueue_local(target, query_id, idx, attempt);
}

void StashCluster::enqueue_local(NodeId node_id, std::uint64_t query_id,
                                 std::size_t idx, int attempt) {
  Node& node = *nodes_[node_id];
  const EvalMode mode = config_.mode == SystemMode::Basic ? EvalMode::Basic
                                                          : EvalMode::Cached;
  auto slot = std::make_shared<Evaluation>();
  node.server.submit(
      [this, &node, query_id, idx, attempt, mode, slot]() -> sim::SimTime {
        const auto it = pending_.find(query_id);
        if (it == pending_.end()) return 0;
        const Subquery& sq = it->second.subqueries[idx];
        if (sq.done || sq.attempts != attempt) return 0;  // superseded
        *slot = node.engine.evaluate_partition(sq.partition, it->second.query,
                                               mode);
        return service_time(slot->breakdown);
      },
      [this, &node, query_id, idx, attempt, slot] {
        ++metrics_.subqueries_processed;
        const auto it = pending_.find(query_id);
        if (it == pending_.end()) return;
        const Subquery& sq = it->second.subqueries[idx];
        if (sq.done || sq.attempts != attempt) return;
        // Background maintenance: populate the graph off the response path.
        if (config_.mode != SystemMode::Basic &&
            (!slot->fetched.empty() || !slot->touched_chunks.empty())) {
          const Resolution res = it->second.query.res;
          auto maintenance_slot = slot;
          node.maintenance.submit([this, &node, res,
                                   maintenance_slot]() -> sim::SimTime {
            const MaintenanceStats stats =
                node.engine.absorb(*maintenance_slot, res, loop_.now());
            const sim::SimTime t = maintenance_time(stats);
            ++metrics_.maintenance_tasks;
            metrics_.total_maintenance_time += t;
            return t;
          });
        }
        const std::size_t bytes =
            slot->cells.size() * config_.response_cell_bytes + 128;
        send_message(node.id, sim::kFrontendNode, bytes,
                     [this, query_id, idx, attempt, slot]() {
                       deliver_response(query_id, idx, attempt,
                                        std::move(*slot));
                     });
        // Re-check as the queue drains: a *cold* hotspot has nothing to
        // replicate at arrival time, but once maintenance populates the
        // graph a handoff becomes possible.
        maybe_start_handoff(node.id);
      });
  maybe_start_handoff(node_id);
}

void StashCluster::enqueue_guest(NodeId helper_id, NodeId owner_id,
                                 std::uint64_t query_id, std::size_t idx,
                                 int attempt) {
  Node& helper = *nodes_[helper_id];
  auto slot = std::make_shared<Evaluation>();
  helper.server.submit(
      [this, &helper, query_id, idx, attempt, slot]() -> sim::SimTime {
        const auto it = pending_.find(query_id);
        if (it == pending_.end()) return 0;
        const Subquery& sq = it->second.subqueries[idx];
        if (sq.done || sq.attempts != attempt) return 0;
        // Lazily purge idle guest Cliques before serving (§VII-D).
        helper.guest_graph.purge_older_than(loop_.now(), config_.stash.guest_ttl);
        *slot = helper.guest_engine.evaluate_partition(
            sq.partition, it->second.query, EvalMode::CacheOnly);
        return service_time(slot->breakdown);
      },
      [this, &helper, owner_id, query_id, idx, attempt, slot] {
        ++metrics_.subqueries_processed;
        const auto it = pending_.find(query_id);
        if (it == pending_.end()) return;
        Subquery& sq = it->second.subqueries[idx];
        if (sq.done || sq.attempts != attempt) return;
        if (slot->breakdown.chunks_missing > 0) {
          // Replica purged or incomplete: fall back to the owning node
          // (no further rerouting to avoid a loop).  The helper answered,
          // so it is no longer the one a timeout should blame.
          ++metrics_.guest_fallbacks;
          sq.forwarded_to.reset();
          send_message(helper.id, owner_id, config_.request_bytes,
                       [this, owner_id, query_id, idx, attempt] {
                         enqueue_local(owner_id, query_id, idx, attempt);
                       });
          return;
        }
        // Keep served guest regions fresh so the TTL purge spares them.
        const Resolution res = it->second.query.res;
        helper.guest_engine.absorb(*slot, res, loop_.now());
        const std::size_t bytes =
            slot->cells.size() * config_.response_cell_bytes + 128;
        send_message(helper.id, sim::kFrontendNode, bytes,
                     [this, query_id, idx, attempt, slot]() {
                       deliver_response(query_id, idx, attempt,
                                        std::move(*slot));
                     });
      });
}

void StashCluster::deliver_response(std::uint64_t query_id, std::size_t idx,
                                    int attempt, Evaluation&& eval) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  Subquery& sq = pending.subqueries[idx];
  if (sq.done || sq.attempts != attempt) return;  // late duplicate: ignore
  sq.done = true;
  if (sq.timeout != 0) {
    loop_.cancel(sq.timeout);
    sq.timeout = 0;
  }
  // Evidence of life closes the circuit breaker.
  absolve(sq.target);
  if (sq.forwarded_to.has_value()) absolve(*sq.forwarded_to);

  pending.stats.breakdown += eval.breakdown;
  if (config_.discard_payload) {
    // Cells are disjoint across partitions: counting is exact.
    pending.stats.result_cells += eval.cells.size();
  } else {
    for (auto& [key, summary] : eval.cells) {
      auto [cell_it, inserted] =
          pending.cells.try_emplace(key, std::move(summary));
      if (!inserted) cell_it->second.merge(summary);
    }
  }
  complete_subquery(query_id);
}

void StashCluster::complete_subquery(std::uint64_t query_id) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  if (--pending.remaining > 0) return;
  // Gather complete: charge the front-end merge + render overhead.
  const std::size_t merged_cells = config_.discard_payload
                                       ? pending.stats.result_cells
                                       : pending.cells.size();
  const sim::SimTime finish =
      config_.frontend_overhead + config_.cost.merge(merged_cells);
  loop_.schedule(finish, [this, query_id] {
    const auto done_it = pending_.find(query_id);
    if (done_it == pending_.end()) return;
    Pending finished = std::move(done_it->second);
    pending_.erase(done_it);
    finished.stats.completed_at = loop_.now();
    if (!config_.discard_payload)
      finished.stats.result_cells = finished.cells.size();
    if (finished.stats.failed_subqueries > 0) {
      finished.stats.partial = true;
      ++metrics_.partial_queries;
    }
    ++metrics_.queries_completed;
    if (finished.done) finished.done(finished.stats);
    if (finished.done_rich)
      finished.done_rich(finished.stats, std::move(finished.cells));
  });
}

void StashCluster::maybe_start_handoff(NodeId node_id) {
  if (config_.mode != SystemMode::Stash) return;
  Node& node = *nodes_[node_id];
  if (node.server.queue_length() <= config_.stash.hotspot_queue_threshold) return;
  if (loop_.now() - node.last_handoff < config_.stash.hotspot_cooldown) return;
  // Back off briefly between attempts so a saturated node does not run
  // clique selection on every enqueue.
  if (loop_.now() - node.last_handoff_attempt < 2 * sim::kMillisecond) return;
  node.last_handoff_attempt = loop_.now();

  const CliqueSelector selector(node.graph);
  auto cliques = selector.select_top(loop_.now(),
                                     config_.stash.max_replicated_cells,
                                     config_.stash.max_cliques_per_handoff,
                                     config_.stash.clique_depth);
  // A cold hotspot (nothing cached yet) has nothing to replicate; do not
  // burn the cooldown — retry once maintenance has populated the graph.
  if (cliques.empty()) return;
  node.last_handoff = loop_.now();
  ++metrics_.handoffs_initiated;
  for (auto& clique : cliques) send_distress(node_id, std::move(clique), 0);
}

void StashCluster::send_distress(NodeId hot_id, Clique clique, int attempt) {
  if (attempt > config_.antipode_retries) {
    ++metrics_.distress_rejections;
    return;
  }
  if (!fault_.alive(hot_id)) return;  // the hot node died: abandon the handoff
  Node& hot = *nodes_[hot_id];
  // Antipode selection (§VII-B.3): first try the node owning the region
  // diametrically opposite the Clique; on rejection wander randomly around
  // that antipode.  (HelperPolicy::Neighbor is the related-work ablation:
  // replicate to a node owning an adjacent region instead.)
  std::string target_gh;
  if (config_.helper_policy == HelperPolicy::Antipode) {
    target_gh = geohash::antipode(clique.root.prefix_str());
  } else {
    const auto east =
        geohash::neighbor(clique.root.prefix_str(), geohash::Direction::E);
    target_gh = east.value_or(geohash::antipode(clique.root.prefix_str()));
  }
  for (int i = 0; i < attempt; ++i) {
    const auto neighbors = geohash::neighbors(target_gh);
    target_gh = neighbors[hot.rng.next_below(neighbors.size())];
  }
  const NodeId target = dht_.node_for(target_gh);
  if (target == hot_id) {
    send_distress(hot_id, std::move(clique), attempt + 1);
    return;
  }
  if (suspected(target)) {
    // Circuit breaker: a suspected-dead helper is a free NACK — keep
    // wandering instead of paying the handoff timeout.
    send_distress(hot_id, std::move(clique), attempt + 1);
    return;
  }

  // Watchdog for the whole Distress -> Ack -> Replication -> Response
  // round: a dead helper or a lost message is treated as a NACK and the
  // antipode retry continues.
  auto settled = std::make_shared<bool>(false);
  sim::EventLoop::EventId watchdog = 0;
  if (config_.handoff_timeout > 0) {
    watchdog = loop_.schedule_cancellable(
        config_.handoff_timeout,
        [this, hot_id, target, clique, attempt, settled] {
          if (*settled) return;
          *settled = true;
          ++metrics_.timeouts_fired;
          ++metrics_.handoff_timeouts;
          suspect(target);
          if (fault_.alive(hot_id)) {
            nodes_[hot_id]->routing.drop_helper(target);
            send_distress(hot_id, clique, attempt + 1);
          }
        });
  }
  const auto settle = [this, settled, watchdog] {
    *settled = true;
    if (watchdog != 0) loop_.cancel(watchdog);
  };

  // Distress Request: hot -> helper.
  send_message(
      hot_id, target, config_.request_bytes,
      [this, hot_id, target, clique = std::move(clique), attempt, settled,
       settle]() mutable {
        Node& helper = *nodes_[target];
        const bool accept =
            helper.server.queue_length() <=
                config_.stash.hotspot_queue_threshold &&
            helper.guest_graph.total_cells() + clique.cell_count <=
                config_.stash.guest_capacity_cells;
        if (!accept) {
          // Negative acknowledgement: helper -> hot, retry on arrival.
          send_message(target, hot_id, kAckBytes,
                       [this, hot_id, clique = std::move(clique), attempt,
                        settled, settle]() mutable {
                         if (*settled) return;
                         settle();
                         ++metrics_.distress_rejections;
                         send_distress(hot_id, std::move(clique), attempt + 1);
                       });
          return;
        }
        // Positive ack: helper -> hot; on arrival the hot node ships the
        // Clique's Cells, encoded with the real wire codec so transfer
        // time reflects actual bytes.
        send_message(
            target, hot_id, kAckBytes,
            [this, hot_id, target, clique = std::move(clique), settled,
             settle]() mutable {
              if (*settled) return;
              Node& hot_node = *nodes_[hot_id];
              const auto payload = clique_payload(hot_node.graph, clique);
              std::size_t cells = 0;
              for (const auto& c : payload) cells += c.cells.size();
              codec::Buffer wire = codec::encode_replication_payload(payload);
              const std::size_t bytes = wire.size() + config_.request_bytes;
              // Replication Request: hot -> helper.
              send_message(
                  hot_id, target, bytes,
                  [this, hot_id, target, clique = std::move(clique),
                   wire = std::move(wire), cells, settled, settle]() mutable {
                    Node& helper_node = *nodes_[target];
                    for (const auto& contribution :
                         codec::decode_replication_payload(wire))
                      helper_node.guest_graph.absorb(contribution, loop_.now());
                    ++metrics_.cliques_replicated;
                    metrics_.cells_replicated += cells;
                    // Replication Response: helper -> hot populates the
                    // routing table (§VII-B.5).
                    send_message(
                        target, hot_id, kAckBytes,
                        [this, hot_id, target, clique = std::move(clique),
                         settled, settle] {
                          if (*settled) return;
                          settle();
                          Node& hot_after = *nodes_[hot_id];
                          for (const auto& member : clique.members)
                            hot_after.routing.add(member.res, member.chunk,
                                                  target, loop_.now());
                        });
                  });
            });
      });
}

void StashCluster::check_quiescence() const {
  if (pending_.empty()) return;
  throw std::runtime_error(
      "StashCluster: " + std::to_string(pending_.size()) +
      " quer(y/ies) survived quiescence — a subquery was lost and never "
      "timed out; enable subquery_timeout or fix the scatter/gather path");
}

QueryStats StashCluster::run_query(const AggregationQuery& query,
                                   CellSummaryMap* cells_out) {
  QueryStats out;
  submit(query, [&out, cells_out](const QueryStats& stats, CellSummaryMap&& cells) {
    out = stats;
    if (cells_out != nullptr) *cells_out = std::move(cells);
  });
  loop_.run();
  check_quiescence();
  return out;
}

std::vector<QueryStats> StashCluster::run_burst(
    const std::vector<AggregationQuery>& queries) {
  std::vector<QueryStats> out(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i)
    submit(queries[i], [&out, i](const QueryStats& stats) { out[i] = stats; });
  loop_.run();
  check_quiescence();
  return out;
}

std::vector<QueryStats> StashCluster::run_open_loop(
    const std::vector<AggregationQuery>& queries, sim::SimTime interarrival) {
  std::vector<QueryStats> out(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    loop_.schedule(static_cast<sim::SimTime>(i) * interarrival,
                   [this, &out, i, query = queries[i]] {
                     submit(query, [&out, i](const QueryStats& stats) {
                       out[i] = stats;
                     });
                   });
  }
  loop_.run();
  check_quiescence();
  return out;
}

std::vector<QueryStats> StashCluster::run_sequence(
    const std::vector<AggregationQuery>& queries) {
  std::vector<QueryStats> out(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    submit(queries[i], [&out, i](const QueryStats& stats) { out[i] = stats; });
    loop_.run();
    check_quiescence();
  }
  return out;
}

const StashGraph& StashCluster::node_graph(NodeId id) const {
  return nodes_.at(id)->graph;
}

const StashGraph& StashCluster::node_guest_graph(NodeId id) const {
  return nodes_.at(id)->guest_graph;
}

const RoutingTable& StashCluster::node_routing(NodeId id) const {
  return nodes_.at(id)->routing;
}

std::size_t StashCluster::node_queue_length(NodeId id) const {
  return nodes_.at(id)->server.queue_length();
}

std::size_t StashCluster::total_cached_cells() const {
  std::size_t total = 0;
  for (const auto& node : nodes_) total += node->graph.total_cells();
  return total;
}

std::size_t StashCluster::total_guest_cells() const {
  std::size_t total = 0;
  for (const auto& node : nodes_) total += node->guest_graph.total_cells();
  return total;
}

AuditReport StashCluster::audit_all(AuditOptions options) const {
  if (!options.now) options.now = loop_.now();
  const GraphAuditor auditor(options);
  AuditReport total;
  for (const auto& node : nodes_) {
    const auto annotate = [&](AuditReport&& report, const char* which) {
      for (auto& v : report.violations)
        v.detail = "node " + std::to_string(node->id) + " " + which + ": " +
                   v.detail;
      total.merge(std::move(report));
    };
    annotate(auditor.audit(node->graph), "graph");
    annotate(auditor.audit(node->guest_graph), "guest");
    annotate(auditor.audit_routing(node->routing, config_.num_nodes, node->id),
             "routing");
  }
  return total;
}

std::size_t StashCluster::preload(const AggregationQuery& query) {
  std::size_t inserted = 0;
  for (const auto& partition :
       geohash::covering(query.area, config_.partition_prefix_length)) {
    const NodeId owner = dht_.node_for_partition(partition);
    if (!fault_.alive(owner)) continue;  // a dead node cannot warm its cache
    Node& node = *nodes_[owner];
    const Evaluation eval =
        node.engine.evaluate_partition(partition, query, EvalMode::Cached);
    const MaintenanceStats stats =
        node.engine.absorb(eval, query.res, loop_.now());
    inserted += stats.cells_absorbed;
  }
  return inserted;
}

void StashCluster::clear_caches() {
  for (auto& node : nodes_) {
    node->graph.clear();
    node->guest_graph.clear();
    node->routing.purge(loop_.now() + config_.stash.routing_ttl * 2,
                        config_.stash.routing_ttl);
  }
}

void StashCluster::invalidate_block(const std::string& partition,
                                    std::int64_t day) {
  for (auto& node : nodes_) {
    node->graph.invalidate_block(partition, day);
    node->guest_graph.invalidate_block(partition, day);
  }
}

std::uint64_t StashCluster::ingest_update(const std::string& partition,
                                          std::int64_t day) {
  const std::uint64_t version = store_.ingest_update(BlockKey{partition, day});
  invalidate_block(partition, day);
  return version;
}

}  // namespace stash::cluster
