#include "dht/partitioner.hpp"

#include <stdexcept>

#include "common/hash.hpp"
#include "geo/geohash.hpp"

namespace stash {

ZeroHopDht::ZeroHopDht(std::uint32_t num_nodes, int prefix_length)
    : num_nodes_(num_nodes), prefix_length_(prefix_length) {
  if (num_nodes == 0) throw std::invalid_argument("ZeroHopDht: need >= 1 node");
  if (prefix_length < 1 || prefix_length > geohash::kMaxPrecision)
    throw std::invalid_argument("ZeroHopDht: bad prefix length");
}

std::string ZeroHopDht::partition_key(std::string_view gh) const {
  if (gh.size() < static_cast<std::size_t>(prefix_length_))
    throw std::invalid_argument(
        "ZeroHopDht::partition_key: geohash shorter than the partition prefix");
  return std::string(gh.substr(0, static_cast<std::size_t>(prefix_length_)));
}

NodeId ZeroHopDht::node_for(std::string_view gh) const {
  if (gh.size() < static_cast<std::size_t>(prefix_length_))
    throw std::invalid_argument(
        "ZeroHopDht::node_for: geohash shorter than the partition prefix");
  return node_for_partition(
      gh.substr(0, static_cast<std::size_t>(prefix_length_)));
}

NodeId ZeroHopDht::node_for_partition(std::string_view partition) const {
  if (partition.size() != static_cast<std::size_t>(prefix_length_))
    throw std::invalid_argument("ZeroHopDht::node_for_partition: bad key length");
  return static_cast<NodeId>(mix64(fnv1a(partition)) % num_nodes_);
}

NodeId ZeroHopDht::successor_for_partition(std::string_view partition,
                                           std::uint32_t k) const {
  return (node_for_partition(partition) + k) % num_nodes_;
}

NodeId ZeroHopDht::node_for_point(const LatLng& point) const {
  return node_for(geohash::encode(point, prefix_length_));
}

std::vector<std::string> ZeroHopDht::partitions_of(NodeId node) const {
  std::vector<std::string> out;
  for (auto& key : all_partitions())
    if (node_for_partition(key) == node) out.push_back(std::move(key));
  return out;
}

std::vector<std::string> ZeroHopDht::all_partitions() const {
  std::vector<std::string> keys{""};
  for (int round = 0; round < prefix_length_; ++round) {
    std::vector<std::string> next;
    next.reserve(keys.size() * 32);
    for (const auto& k : keys)
      for (char c : geohash::kAlphabet) next.push_back(k + c);
    keys = std::move(next);
  }
  return keys;
}

}  // namespace stash
