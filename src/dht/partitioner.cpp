#include "dht/partitioner.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/hash.hpp"
#include "geo/geohash.hpp"

namespace stash {

bool RingView::contains(NodeId node) const noexcept {
  return std::binary_search(members.begin(), members.end(), node);
}

ZeroHopDht::ZeroHopDht(std::uint32_t num_nodes, int prefix_length)
    : prefix_length_(prefix_length) {
  if (num_nodes == 0) throw std::invalid_argument("ZeroHopDht: need >= 1 node");
  if (prefix_length < 1 || prefix_length > geohash::kMaxPrecision)
    throw std::invalid_argument("ZeroHopDht: bad prefix length");
  ring_.epoch = 0;
  ring_.members.resize(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) ring_.members[i] = i;
}

void ZeroHopDht::install(RingView view) {
  if (view.epoch <= ring_.epoch)
    throw std::invalid_argument("ZeroHopDht::install: epoch must advance");
  if (view.members.empty())
    throw std::invalid_argument("ZeroHopDht::install: empty member set");
  std::sort(view.members.begin(), view.members.end());
  if (std::adjacent_find(view.members.begin(), view.members.end()) !=
      view.members.end())
    throw std::invalid_argument("ZeroHopDht::install: duplicate member");
  ring_ = std::move(view);
}

std::string ZeroHopDht::partition_key(std::string_view gh) const {
  if (gh.size() < static_cast<std::size_t>(prefix_length_))
    throw std::invalid_argument(
        "ZeroHopDht::partition_key: geohash shorter than the partition prefix");
  return std::string(gh.substr(0, static_cast<std::size_t>(prefix_length_)));
}

NodeId ZeroHopDht::node_for(std::string_view gh) const {
  if (gh.size() < static_cast<std::size_t>(prefix_length_))
    throw std::invalid_argument(
        "ZeroHopDht::node_for: geohash shorter than the partition prefix");
  return node_for_partition(
      gh.substr(0, static_cast<std::size_t>(prefix_length_)));
}

std::size_t ZeroHopDht::owner_index(std::string_view partition) const {
  if (partition.size() != static_cast<std::size_t>(prefix_length_))
    throw std::invalid_argument("ZeroHopDht::node_for_partition: bad key length");
  return static_cast<std::size_t>(mix64(fnv1a(partition)) %
                                  ring_.members.size());
}

NodeId ZeroHopDht::node_for_partition(std::string_view partition) const {
  return ring_.members[owner_index(partition)];
}

NodeId ZeroHopDht::successor_for_partition(std::string_view partition,
                                           std::uint32_t k) const {
  const std::size_t idx = owner_index(partition);
  return ring_.members[(idx + k) % ring_.members.size()];
}

NodeId ZeroHopDht::successor_of_node(NodeId node, std::uint32_t k) const {
  // First member strictly after `node` in sorted order, cyclically.
  const auto it =
      std::upper_bound(ring_.members.begin(), ring_.members.end(), node);
  const std::size_t start =
      static_cast<std::size_t>(it - ring_.members.begin()) %
      ring_.members.size();
  return ring_.members[(start + k) % ring_.members.size()];
}

NodeId ZeroHopDht::node_for_point(const LatLng& point) const {
  return node_for(geohash::encode(point, prefix_length_));
}

std::vector<std::string> ZeroHopDht::partitions_of(NodeId node) const {
  std::vector<std::string> out;
  for_each_partition_of(node,
                        [&out](std::string_view key) { out.emplace_back(key); });
  return out;
}

std::vector<std::string> ZeroHopDht::all_partitions() const {
  std::vector<std::string> out;
  out.reserve(1);
  for_each_partition([&out](std::string_view key) { out.emplace_back(key); });
  return out;
}

void ZeroHopDht::for_each_partition(
    const std::function<void(std::string_view)>& fn) const {
  // Odometer over the geohash alphabet, most-significant digit first —
  // identical (lexicographic-in-alphabet) order to the historical eager
  // expansion, but O(prefix_length) working memory.
  std::string key(static_cast<std::size_t>(prefix_length_),
                  geohash::kAlphabet[0]);
  std::vector<int> digits(static_cast<std::size_t>(prefix_length_), 0);
  const int base = static_cast<int>(geohash::kAlphabet.size());
  for (;;) {
    fn(key);
    int pos = prefix_length_ - 1;
    while (pos >= 0) {
      if (++digits[static_cast<std::size_t>(pos)] < base) {
        key[static_cast<std::size_t>(pos)] =
            geohash::kAlphabet[static_cast<std::size_t>(
                digits[static_cast<std::size_t>(pos)])];
        break;
      }
      digits[static_cast<std::size_t>(pos)] = 0;
      key[static_cast<std::size_t>(pos)] = geohash::kAlphabet[0];
      --pos;
    }
    if (pos < 0) return;  // odometer wrapped: every key visited
  }
}

void ZeroHopDht::for_each_partition_of(
    NodeId node, const std::function<void(std::string_view)>& fn) const {
  for_each_partition([this, node, &fn](std::string_view key) {
    if (node_for_partition(key) == node) fn(key);
  });
}

}  // namespace stash
