// Zero-hop DHT partitioner (Galileo-style, paper §VI-C).
//
// "Galileo is a zero-hop Distributed Hash Table based storage system that
// uses Geohash to generate data partitions that store and colocate
// geospatially proximate data points."  Every node knows the full
// key-range → node mapping, so locating the owner of any geohash is a
// single local computation: O(1), at most one query forwarding (§IV-D).
//
// Elastic membership: ownership is computed against an epoch-versioned
// RingView — a sorted member list published by the cluster frontend once
// gossip membership stabilizes.  owner(p) = members[hash(p) % |members|],
// successor k = members[(owner_index + k) % |members|].  For the
// contiguous member set {0..N-1} this is bit-identical to the classic
// fixed-size modulo mapping, so a never-resized cluster behaves exactly
// as before; a resize moves a non-minimal set of partitions (accepted:
// the durable store is generative, so moves cost warmth, not data).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "geo/latlng.hpp"

namespace stash {

using NodeId = std::uint32_t;

/// Epoch-versioned cluster membership snapshot.  `members` is kept sorted
/// and duplicate-free; `epoch` only ever advances, so two RingViews are
/// totally ordered and every in-flight transfer can be tagged with the
/// epoch it was planned under and discarded when the ring moves on.
struct RingView {
  std::uint64_t epoch = 0;
  std::vector<NodeId> members;

  [[nodiscard]] bool contains(NodeId node) const noexcept;
};

class ZeroHopDht {
 public:
  /// `num_nodes` initial cluster members (ring epoch 0 = {0..num_nodes-1});
  /// `prefix_length` characters of the geohash form the partition key
  /// (paper §VIII-A: "partitioned uniformly over the cluster based on the
  /// first 2 characters of their Geohash").
  ZeroHopDht(std::uint32_t num_nodes, int prefix_length = 2);

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(ring_.members.size());
  }
  [[nodiscard]] int prefix_length() const noexcept { return prefix_length_; }

  /// The currently installed membership view.
  [[nodiscard]] const RingView& ring() const noexcept { return ring_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return ring_.epoch; }

  /// Installs a new membership view.  The epoch must strictly advance and
  /// the member list must be non-empty and duplicate-free (it is sorted in
  /// place).  Throws std::invalid_argument otherwise.
  void install(RingView view);

  /// Partition key (geohash prefix) that owns a geohash. The geohash must be
  /// at least prefix_length characters long.
  [[nodiscard]] std::string partition_key(std::string_view gh) const;

  /// Owner node of a geohash.  Throws std::invalid_argument for geohashes
  /// shorter than prefix_length — a truncated key cannot name a partition.
  [[nodiscard]] NodeId node_for(std::string_view gh) const;

  /// Owner node of a partition key (exactly prefix_length characters).
  [[nodiscard]] NodeId node_for_partition(std::string_view partition) const;

  /// k-th successor of a partition's owner on the node ring — the failover
  /// target when the owner is unreachable: any node can re-scan the
  /// partition from durable storage, so the next live ring member takes
  /// over.  k == 0 is the owner itself; k wraps modulo the member count.
  [[nodiscard]] NodeId successor_for_partition(std::string_view partition,
                                               std::uint32_t k) const;

  /// k-th member after `node` in cyclic sorted member order (k == 0 is the
  /// first member *after* node).  If `node` is not itself a member the walk
  /// starts at the first member with id > node.  Used to pick anti-entropy
  /// peers when the member set is no longer contiguous.
  [[nodiscard]] NodeId successor_of_node(NodeId node, std::uint32_t k) const;

  /// Owner node of a raw point.
  [[nodiscard]] NodeId node_for_point(const LatLng& point) const;

  /// All partition keys owned by a node (for inventory / rebalance tooling).
  [[nodiscard]] std::vector<std::string> partitions_of(NodeId node) const;

  /// Every partition key in the keyspace (32^prefix_length entries).
  [[nodiscard]] std::vector<std::string> all_partitions() const;

  /// Streaming forms of the above: invoke `fn` per key without
  /// materializing the 32^prefix_length keyspace.  Rebalance inventory
  /// scans run these once per epoch change, so the allocation matters.
  void for_each_partition(
      const std::function<void(std::string_view)>& fn) const;
  void for_each_partition_of(
      NodeId node, const std::function<void(std::string_view)>& fn) const;

 private:
  [[nodiscard]] std::size_t owner_index(std::string_view partition) const;

  int prefix_length_;
  RingView ring_;
};

}  // namespace stash
