// Zero-hop DHT partitioner (Galileo-style, paper §VI-C).
//
// "Galileo is a zero-hop Distributed Hash Table based storage system that
// uses Geohash to generate data partitions that store and colocate
// geospatially proximate data points."  Every node knows the full
// key-range → node mapping, so locating the owner of any geohash is a
// single local computation: O(1), at most one query forwarding (§IV-D).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "geo/latlng.hpp"

namespace stash {

using NodeId = std::uint32_t;

class ZeroHopDht {
 public:
  /// `num_nodes` cluster members; `prefix_length` characters of the geohash
  /// form the partition key (paper §VIII-A: "partitioned uniformly over the
  /// cluster based on the first 2 characters of their Geohash").
  ZeroHopDht(std::uint32_t num_nodes, int prefix_length = 2);

  [[nodiscard]] std::uint32_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] int prefix_length() const noexcept { return prefix_length_; }

  /// Partition key (geohash prefix) that owns a geohash. The geohash must be
  /// at least prefix_length characters long.
  [[nodiscard]] std::string partition_key(std::string_view gh) const;

  /// Owner node of a geohash.  Throws std::invalid_argument for geohashes
  /// shorter than prefix_length — a truncated key cannot name a partition.
  [[nodiscard]] NodeId node_for(std::string_view gh) const;

  /// Owner node of a partition key (exactly prefix_length characters).
  [[nodiscard]] NodeId node_for_partition(std::string_view partition) const;

  /// k-th successor of a partition's owner on the node ring — the failover
  /// target when the owner is unreachable: any node can re-scan the
  /// partition from durable storage, so the next live ring member takes
  /// over.  k == 0 is the owner itself; k wraps modulo the cluster size.
  [[nodiscard]] NodeId successor_for_partition(std::string_view partition,
                                               std::uint32_t k) const;

  /// Owner node of a raw point.
  [[nodiscard]] NodeId node_for_point(const LatLng& point) const;

  /// All partition keys owned by a node (for inventory / rebalance tooling).
  [[nodiscard]] std::vector<std::string> partitions_of(NodeId node) const;

  /// Every partition key in the keyspace (32^prefix_length entries).
  [[nodiscard]] std::vector<std::string> all_partitions() const;

 private:
  std::uint32_t num_nodes_;
  int prefix_length_;
};

}  // namespace stash
