#include "exec/wall_clock.hpp"

#include <algorithm>
#include <utility>

#include "common/checksum.hpp"
#include "sim/clock.hpp"

namespace stash::exec {

codec::Buffer canonical_answer(const CellSummaryMap& cells) {
  std::vector<const std::pair<const CellKey, Summary>*> sorted;
  sorted.reserve(cells.size());
  for (const auto& entry : cells) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  codec::Buffer out;
  for (const auto* entry : sorted) {
    codec::encode(out, entry->first);
    codec::encode(out, entry->second);
  }
  return out;
}

std::uint64_t answer_digest(const CellSummaryMap& cells, std::uint64_t seed) {
  const codec::Buffer bytes = canonical_answer(cells);
  return checksum64(bytes.data(), bytes.size(), seed);
}

namespace {

template <typename Engine>
RunResult run_queries(Engine& engine,
                      const std::vector<AggregationQuery>& queries,
                      EvalMode mode) {
  RunResult out;
  out.digest = kChecksumSeed;
  for (const AggregationQuery& query : queries) {
    const Evaluation eval = engine.evaluate(query, mode);
    const codec::Buffer bytes = canonical_answer(eval.cells);
    const std::uint64_t digest =
        checksum64(bytes.data(), bytes.size(), out.digest);
    out.per_query.push_back(digest);
    out.digest = digest;
    out.cells += eval.cells.size();
    out.bytes += bytes.size();
    ++out.queries;
    // Deterministic pseudo-time: both modes absorb at the same instants,
    // so freshness and eviction state evolve identically.
    engine.absorb(eval, query.res,
                  static_cast<sim::SimTime>(out.queries) * sim::kMillisecond);
  }
  return out;
}

}  // namespace

RunResult run_queries_sim(StashGraph& graph, const GalileoStore& store,
                          const std::vector<AggregationQuery>& queries,
                          EvalMode mode) {
  QueryEngine engine(graph, store);
  return run_queries(engine, queries, mode);
}

RunResult run_queries_wallclock(StashGraph& graph, const GalileoStore& store,
                                const std::vector<AggregationQuery>& queries,
                                const ExecConfig& config, EvalMode mode) {
  ParallelQueryEngine engine(graph, store, config);
  return run_queries(engine, queries, mode);
}

}  // namespace stash::exec
