#include "exec/parallel_engine.hpp"

#include <exception>
#include <iterator>
#include <set>
#include <stdexcept>
#include <utility>

#include "concurrency/cancellation.hpp"
#include "concurrency/wakeup_gate.hpp"
#include "exec/host_clock.hpp"
#include "geo/geohash.hpp"

namespace stash::exec {

namespace {

// Chunk lifecycle, published with release by the executing thread and
// read with acquire by the collecting submitter.
constexpr std::uint32_t kChunkPending = 0;
constexpr std::uint32_t kChunkDone = 1;
constexpr std::uint32_t kChunkCancelled = 2;
constexpr std::uint32_t kChunkFailed = 3;

/// CancelProbe adapter over the batch token (between-cells checks).
class TokenProbe final : public CancelProbe {
 public:
  explicit TokenProbe(const concurrency::CancellationToken& token) noexcept
      : token_(token) {}
  [[nodiscard]] bool cancelled() const noexcept override {
    return token_.cancelled();
  }

 private:
  const concurrency::CancellationToken& token_;
};

}  // namespace

/// Everything one batch fans out over, owned by shared_ptr: the submitter
/// may return at its deadline while straggler tasks still hold a
/// reference, so nothing here can live on the submitting thread's stack.
struct ParallelQueryEngine::BatchState {
  struct Part {
    std::string partition;
    QueryEngine::PartitionPlan plan;
    std::size_t first = 0;  // index of this partition's first chunk/outcome
  };
  struct ChunkOutcome {
    CellSummaryMap cells;
    ChunkEvalResult result;
    std::exception_ptr error;
  };

  AggregationQuery query;
  EvalMode mode;
  std::vector<Part> parts;
  /// items[i] = index into parts; the chunk is plan.chunks[i - first].
  std::vector<std::size_t> part_of;
  std::vector<ChunkOutcome> outcomes;
  std::unique_ptr<concurrency::catomic<std::uint32_t>[]> chunk_state;
  concurrency::CancellationToken token;
  concurrency::WakeupGate done;
  concurrency::catomic<std::uint64_t> remaining;

  BatchState(AggregationQuery q, EvalMode m, std::vector<Part> p)
      : query(std::move(q)),
        mode(m),
        parts(std::move(p)),
        remaining(0, "exec.batch_remaining") {
    std::size_t n = 0;
    for (auto& part : parts) {
      part.first = n;
      n += part.plan.chunks.size();
    }
    part_of.resize(n);
    for (std::size_t pi = 0; pi < parts.size(); ++pi)
      for (std::size_t j = 0; j < parts[pi].plan.chunks.size(); ++j)
        part_of[parts[pi].first + j] = pi;
    outcomes.resize(n);
    chunk_state =
        std::make_unique<concurrency::catomic<std::uint32_t>[]>(n);
    remaining.store(n);
  }

  [[nodiscard]] std::size_t size() const noexcept { return outcomes.size(); }
};

ParallelQueryEngine::ParallelQueryEngine(StashGraph& graph,
                                        const GalileoStore& store,
                                        ExecConfig config)
    : engine_(graph, store),
      config_(config),
      task_seq_(0, "exec.task_seq"),
      deadline_exceeded_(0, "exec.deadline_exceeded"),
      cancelled_chunks_(0, "exec.cancelled_chunks"),
      task_exceptions_(0, "exec.task_exceptions"),
      pool_(concurrency::WorkerPool::Config{
          config.threads, config.queue_capacity, config.drain_on_shutdown,
          config.watchdog_interval_ns, &host_now_ns}) {}

ParallelQueryEngine::~ParallelQueryEngine() = default;

void ParallelQueryEngine::validate(const AggregationQuery& query) const {
  // Same contract (and messages) as the sequential engine, checked before
  // any task is queued so workers never see an invalid query.
  if (!query.valid())
    throw std::invalid_argument("QueryEngine: invalid query");
  if (query.res.spatial < engine_.store().partition_prefix_length())
    throw std::invalid_argument(
        "QueryEngine: spatial resolution must be >= the DHT partition prefix "
        "length (coarser Cells would span storage partitions)");
}

void ParallelQueryEngine::run_chunk(const std::shared_ptr<BatchState>& state,
                                    std::size_t index,
                                    std::uint64_t task_seq) const {
  BatchState::ChunkOutcome& out = state->outcomes[index];
  std::uint32_t final_state = kChunkDone;
  if (state->token.cancelled()) {
    final_state = kChunkCancelled;
  } else {
    try {
      const FaultDecision fault = fault_decision(config_.faults, task_seq);
      if (fault.throw_exception) throw InjectedFault(task_seq);
      if (fault.stall)
        fault_busy_spin(config_.faults.worker_stall_spins);
      else if (fault.delay)
        fault_busy_spin(config_.faults.task_delay_spins);

      const BatchState::Part& part = state->parts[state->part_of[index]];
      const ChunkKey& chunk = part.plan.chunks[index - part.first];
      const TokenProbe probe(state->token);
      concurrency::RwSpinReaderLock lock(graph_lock_);
      out.result =
          engine_.evaluate_chunk(part.partition, state->query,
                                 part.plan.clipped, chunk, state->mode,
                                 out.cells, &probe);
      if (out.result.cancelled) {
        out.cells.clear();  // a half-scanned chunk is not an honest answer
        final_state = kChunkCancelled;
      }
    } catch (...) {
      out.error = std::current_exception();
      final_state = kChunkFailed;
    }
  }
  if (final_state == kChunkCancelled)
    cancelled_chunks_.fetch_add(1);
  else if (final_state == kChunkFailed)
    task_exceptions_.fetch_add(1);
  // Release pairs with the collector's acquire: a chunk observed done has
  // its cells/result fully visible.
  state->chunk_state[index].store(final_state, std::memory_order_release);
  if (state->remaining.fetch_sub(1, std::memory_order_release) == 1)
    state->done.notify_all();
}

void ParallelQueryEngine::run_batch(const std::shared_ptr<BatchState>& state,
                                    std::uint64_t deadline_ns) const {
  const std::size_t n = state->size();
  if (n == 0) return;

  const bool timed = deadline_ns != 0;
  const auto expired = [deadline_ns] { return host_now_ns() >= deadline_ns; };

  bool expired_in_submit = false;
  for (std::size_t i = 0; i < n; ++i) {
    // The deadline binds during submission too: an inline-shed chunk can
    // burn real time, so once the budget is gone the token is cancelled
    // and the rest of the batch takes run_chunk's fast bail-out path —
    // every chunk still decrements `remaining` exactly once.
    if (timed && !expired_in_submit && expired()) {
      if (state->token.cancel(concurrency::CancelReason::kDeadline,
                              deadline_ns))
        deadline_exceeded_.fetch_add(1);
      expired_in_submit = true;
    }
    const std::uint64_t seq = task_seq_.fetch_add(1);
    concurrency::WorkerPool::Task task = [this, state, i, seq] {
      run_chunk(state, i, seq);
    };
    if (expired_in_submit) {
      task();  // token already cancelled: records kChunkCancelled, ~free
      continue;
    }
    if (!pool_.try_submit(task)) {
      // Every ring full: bounded backpressure means the submitter runs
      // the chunk inline instead of spinning on the rings (counted as
      // submit_shed in the pool stats).
      task();
    }
  }

  // Park until the last chunk lands or the deadline fires (prepare /
  // re-check / commit — the gate protocol proven in tests/mc/).
  while (state->remaining.load(std::memory_order_acquire) != 0) {
    if (timed && expired()) break;
    const concurrency::WakeupGate::Ticket ticket = state->done.prepare_wait();
    if (state->remaining.load(std::memory_order_acquire) == 0) {
      state->done.cancel_wait();
      break;
    }
    if (timed) {
      if (!state->done.commit_wait_until(ticket, expired)) break;
    } else {
      state->done.commit_wait(ticket);
    }
  }

  if (state->remaining.load(std::memory_order_acquire) != 0) {
    // Deadline fired with chunks outstanding: cancel cooperatively and
    // return.  Workers probe the token between chunks and between
    // per-day scans; stragglers decrement against the shared state after
    // we are gone.  (cancel() is idempotent-by-claim: if the submit loop
    // already cancelled, this neither re-publishes nor double-counts.)
    if (state->token.cancel(concurrency::CancelReason::kDeadline,
                            deadline_ns))
      deadline_exceeded_.fetch_add(1);
  }
}

Evaluation ParallelQueryEngine::collect(BatchState& state,
                                        BatchReport& report) const {
  report.chunks_total = state.size();
  Evaluation total;
  for (const BatchState::Part& part : state.parts) {
    const std::size_t count = part.plan.chunks.size();
    bool whole = true;
    for (std::size_t j = 0; j < count; ++j) {
      switch (state.chunk_state[part.first + j].load(
          std::memory_order_acquire)) {
        case kChunkDone:
          ++report.chunks_completed;
          break;
        case kChunkFailed:
          ++report.chunks_failed;
          if (!report.first_error)
            report.first_error = state.outcomes[part.first + j].error;
          whole = false;
          break;
        case kChunkPending:   // still queued/running: will cancel
        case kChunkCancelled:
        default:
          ++report.chunks_cancelled;
          whole = false;
          break;
      }
    }
    if (!whole) {
      // No half-partition answers: withhold every cell of an incomplete
      // partition and name it, mirroring the corrupt-block taxonomy.
      report.incomplete_partitions.push_back(part.partition);
      continue;
    }
    // Mirror QueryEngine::evaluate: per-partition assembly in canonical
    // chunk order, then the same partition-order merge into the total.
    Evaluation eval;
    std::set<std::int64_t> days_scanned;
    for (std::size_t j = 0; j < count; ++j) {
      BatchState::ChunkOutcome& out = state.outcomes[part.first + j];
      eval.touched_chunks.push_back(part.plan.chunks[j]);
      eval.breakdown += out.result.breakdown;
      for (auto& [key, summary] : out.cells) {
        auto [it, inserted] = eval.cells.try_emplace(key, std::move(summary));
        if (!inserted) it->second.merge(summary);
      }
      if (out.result.fetched)
        eval.fetched.push_back(std::move(*out.result.fetched));
      eval.corrupt_blocks.insert(eval.corrupt_blocks.end(),
                                 out.result.corrupt_blocks.begin(),
                                 out.result.corrupt_blocks.end());
      days_scanned.insert(out.result.days_scanned.begin(),
                          out.result.days_scanned.end());
    }
    eval.breakdown.scan.blocks_touched = days_scanned.size();

    total.breakdown += eval.breakdown;
    for (auto& [key, summary] : eval.cells) {
      auto [it, inserted] = total.cells.try_emplace(key, std::move(summary));
      if (!inserted) it->second.merge(summary);
    }
    std::move(eval.fetched.begin(), eval.fetched.end(),
              std::back_inserter(total.fetched));
    std::move(eval.touched_chunks.begin(), eval.touched_chunks.end(),
              std::back_inserter(total.touched_chunks));
    std::move(eval.corrupt_blocks.begin(), eval.corrupt_blocks.end(),
              std::back_inserter(total.corrupt_blocks));
  }
  return total;
}

Evaluation ParallelQueryEngine::evaluate_partition(
    std::string_view partition, const AggregationQuery& query,
    EvalMode mode) const {
  BatchReport report;
  Evaluation eval = evaluate_partition(partition, query, mode, {}, report);
  // Legacy contract: without a deadline every chunk runs; the only
  // possible incompleteness is a throwing chunk, which rethrows here.
  if (report.first_error) std::rethrow_exception(report.first_error);
  return eval;
}

Evaluation ParallelQueryEngine::evaluate_partition(
    std::string_view partition, const AggregationQuery& query, EvalMode mode,
    const ExecOptions& options, BatchReport& report) const {
  validate(query);
  std::vector<BatchState::Part> parts;
  BatchState::Part part{std::string(partition),
                        engine_.plan_partition(partition, query), 0};
  if (!part.plan.empty) parts.push_back(std::move(part));
  auto state =
      std::make_shared<BatchState>(query, mode, std::move(parts));
  run_batch(state, options.deadline_ns);
  report.deadline_exceeded = state->token.cancelled();
  return collect(*state, report);
}

Evaluation ParallelQueryEngine::evaluate(const AggregationQuery& query,
                                         EvalMode mode) const {
  BatchReport report;
  Evaluation eval = evaluate(query, mode, {}, report);
  if (report.first_error) std::rethrow_exception(report.first_error);
  return eval;
}

Evaluation ParallelQueryEngine::evaluate(const AggregationQuery& query,
                                         EvalMode mode,
                                         const ExecOptions& options,
                                         BatchReport& report) const {
  validate(query);

  // Plan every partition first so the whole query fans out as one batch —
  // the covering order here is the canonical merge order.
  std::vector<BatchState::Part> parts;
  for (const auto& partition : geohash::covering(
           query.area, engine_.store().partition_prefix_length())) {
    BatchState::Part part{partition, engine_.plan_partition(partition, query),
                          0};
    if (!part.plan.empty) parts.push_back(std::move(part));
  }
  auto state =
      std::make_shared<BatchState>(query, mode, std::move(parts));
  run_batch(state, options.deadline_ns);
  report.deadline_exceeded = state->token.cancelled();
  return collect(*state, report);
}

MaintenanceStats ParallelQueryEngine::absorb(const Evaluation& eval,
                                             const Resolution& res,
                                             sim::SimTime now) {
  concurrency::RwSpinWriterLock lock(graph_lock_);
  return engine_.absorb(eval, res, now);
}

ExecStats ParallelQueryEngine::exec_stats() const {
  ExecStats out;
  out.pool = pool_.total_stats();
  out.deadline_exceeded = deadline_exceeded_.load();
  out.cancelled_chunks = cancelled_chunks_.load();
  out.task_exceptions = task_exceptions_.load();
  return out;
}

}  // namespace stash::exec
