#include "exec/parallel_engine.hpp"

#include <exception>
#include <iterator>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "concurrency/wakeup_gate.hpp"
#include "geo/geohash.hpp"

namespace stash::exec {

/// One chunk's answer, produced on a worker thread.  `cells` is the
/// chunk-local response map; everything merges on the submitting thread.
struct ParallelQueryEngine::ChunkOutcome {
  CellSummaryMap cells;
  ChunkEvalResult result;
  std::exception_ptr error;
};

/// One unit of fan-out: a chunk of some partition's plan.  The referenced
/// storage outlives the batch (it lives on the submitting thread's stack).
struct ParallelQueryEngine::ChunkItem {
  std::string_view partition;
  const BoundingBox* clipped = nullptr;
  const ChunkKey* chunk = nullptr;
};

ParallelQueryEngine::ParallelQueryEngine(StashGraph& graph,
                                         const GalileoStore& store,
                                         ExecConfig config)
    : engine_(graph, store),
      pool_(concurrency::WorkerPool::Config{config.threads,
                                            config.queue_capacity}) {}

void ParallelQueryEngine::validate(const AggregationQuery& query) const {
  // Same contract (and messages) as the sequential engine, checked before
  // any task is queued so workers never see an invalid query.
  if (!query.valid())
    throw std::invalid_argument("QueryEngine: invalid query");
  if (query.res.spatial < engine_.store().partition_prefix_length())
    throw std::invalid_argument(
        "QueryEngine: spatial resolution must be >= the DHT partition prefix "
        "length (coarser Cells would span storage partitions)");
}

void ParallelQueryEngine::run_batch(const std::vector<ChunkItem>& items,
                                    const AggregationQuery& query,
                                    EvalMode mode,
                                    std::vector<ChunkOutcome>& outcomes) const {
  const std::size_t n = items.size();
  outcomes.resize(n);
  if (n == 0) return;

  // The gate/counter pair is shared-ptr-owned: the last worker touches it
  // *after* its decrement lets the submitter return, so stack ownership
  // would be a use-after-free.  Each task keeps the state alive.
  struct BatchState {
    concurrency::WakeupGate done;
    concurrency::catomic<std::uint64_t> remaining;
    explicit BatchState(std::uint64_t count)
        : remaining(count, "exec.batch_remaining") {}
  };
  auto state = std::make_shared<BatchState>(static_cast<std::uint64_t>(n));

  for (std::size_t i = 0; i < n; ++i) {
    pool_.submit([this, &items, &query, mode, &outcomes, state, i] {
      ChunkOutcome& out = outcomes[i];
      try {
        const ChunkItem& item = items[i];
        concurrency::RwSpinReaderLock lock(graph_lock_);
        out.result = engine_.evaluate_chunk(item.partition, query,
                                            *item.clipped, *item.chunk, mode,
                                            out.cells);
      } catch (...) {
        out.error = std::current_exception();
      }
      // Release pairs with the submitter's acquire below: when it reads 0,
      // every outcome written before a decrement is visible.
      if (state->remaining.fetch_sub(1, std::memory_order_release) == 1)
        state->done.notify_all();
    });
  }

  // Park until the last chunk lands (prepare / re-check / commit — the
  // same gate protocol the workers use, proven in tests/mc/).
  while (state->remaining.load(std::memory_order_acquire) != 0) {
    const concurrency::WakeupGate::Ticket ticket = state->done.prepare_wait();
    if (state->remaining.load(std::memory_order_acquire) == 0) {
      state->done.cancel_wait();
      break;
    }
    state->done.commit_wait(ticket);
  }

  for (const ChunkOutcome& out : outcomes)
    if (out.error) std::rethrow_exception(out.error);
}

void ParallelQueryEngine::assemble(const QueryEngine::PartitionPlan& plan,
                                   std::vector<ChunkOutcome>& outcomes,
                                   std::size_t first, Evaluation& eval) {
  std::set<std::int64_t> days_scanned;
  for (std::size_t i = 0; i < plan.chunks.size(); ++i) {
    ChunkOutcome& out = outcomes[first + i];
    eval.touched_chunks.push_back(plan.chunks[i]);
    eval.breakdown += out.result.breakdown;
    for (auto& [key, summary] : out.cells) {
      auto [it, inserted] = eval.cells.try_emplace(key, std::move(summary));
      if (!inserted) it->second.merge(summary);
    }
    if (out.result.fetched)
      eval.fetched.push_back(std::move(*out.result.fetched));
    eval.corrupt_blocks.insert(eval.corrupt_blocks.end(),
                               out.result.corrupt_blocks.begin(),
                               out.result.corrupt_blocks.end());
    days_scanned.insert(out.result.days_scanned.begin(),
                        out.result.days_scanned.end());
  }
  eval.breakdown.scan.blocks_touched = days_scanned.size();
}

Evaluation ParallelQueryEngine::evaluate_partition(
    std::string_view partition, const AggregationQuery& query,
    EvalMode mode) const {
  validate(query);
  Evaluation eval;
  const QueryEngine::PartitionPlan plan =
      engine_.plan_partition(partition, query);
  if (plan.empty) return eval;

  std::vector<ChunkItem> items;
  items.reserve(plan.chunks.size());
  for (const ChunkKey& chunk : plan.chunks)
    items.push_back({partition, &plan.clipped, &chunk});
  std::vector<ChunkOutcome> outcomes;
  run_batch(items, query, mode, outcomes);
  assemble(plan, outcomes, 0, eval);
  return eval;
}

Evaluation ParallelQueryEngine::evaluate(const AggregationQuery& query,
                                         EvalMode mode) const {
  validate(query);

  // Plan every partition first so the whole query fans out as one batch —
  // the covering order here is the canonical merge order.
  struct PartitionWork {
    std::string partition;
    QueryEngine::PartitionPlan plan;
    std::size_t first = 0;  // index of this partition's first outcome
  };
  std::vector<PartitionWork> work;
  for (const auto& partition : geohash::covering(
           query.area, engine_.store().partition_prefix_length())) {
    PartitionWork w{partition, engine_.plan_partition(partition, query), 0};
    if (!w.plan.empty) work.push_back(std::move(w));
  }

  std::vector<ChunkItem> items;
  for (auto& w : work) {
    w.first = items.size();
    for (const ChunkKey& chunk : w.plan.chunks)
      items.push_back({w.partition, &w.plan.clipped, &chunk});
  }
  std::vector<ChunkOutcome> outcomes;
  run_batch(items, query, mode, outcomes);

  // Mirror QueryEngine::evaluate: per-partition assembly, then the same
  // partition-order merge into the total.
  Evaluation total;
  for (auto& w : work) {
    Evaluation part;
    assemble(w.plan, outcomes, w.first, part);
    total.breakdown += part.breakdown;
    for (auto& [key, summary] : part.cells) {
      auto [it, inserted] = total.cells.try_emplace(key, std::move(summary));
      if (!inserted) it->second.merge(summary);
    }
    std::move(part.fetched.begin(), part.fetched.end(),
              std::back_inserter(total.fetched));
    std::move(part.touched_chunks.begin(), part.touched_chunks.end(),
              std::back_inserter(total.touched_chunks));
    std::move(part.corrupt_blocks.begin(), part.corrupt_blocks.end(),
              std::back_inserter(total.corrupt_blocks));
  }
  return total;
}

MaintenanceStats ParallelQueryEngine::absorb(const Evaluation& eval,
                                             const Resolution& res,
                                             sim::SimTime now) {
  concurrency::RwSpinWriterLock lock(graph_lock_);
  return engine_.absorb(eval, res, now);
}

}  // namespace stash::exec
