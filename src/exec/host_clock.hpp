// Host monotonic time for the wall-clock execution mode's deadline path.
//
// Everything else in src/ is deterministic and runs on sim::Clock — the
// stash_lint wall-clock rule enforces that.  The exec deadline contract
// (DESIGN.md §14) is the one feature whose whole point is host time: a
// pan/zoom must be answered within a real-time budget, so the engine has
// to read the machine's monotonic clock.  This header is the single
// sanctioned read site; `ParallelQueryEngine`, the worker-pool watchdog
// and `stashctl --exec-deadline-ms` all take their notion of "now" from
// here (tests inject fake sources through the same `std::uint64_t`
// nanosecond representation).
//
// stash-lint: allow-file(wall-clock) -- the exec deadline/watchdog path is
// the codebase's single intentional host-time read site (DESIGN.md §14)
#pragma once

#include <chrono>
#include <cstdint>

namespace stash::exec {

/// Monotonic host time in nanoseconds.  Only differences and comparisons
/// are meaningful; the epoch is unspecified (steady_clock's).
[[nodiscard]] inline std::uint64_t host_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace stash::exec
