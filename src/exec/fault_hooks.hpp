// Thread-level fault injection for the wall-clock datapath — the real-
// thread counterpart of sim::FaultPlan (DESIGN.md §14).
//
// Three fault kinds, mirroring what actually goes wrong in a thread pool:
//
//   * task delay      — a chunk task burns extra CPU before running
//                       (scheduling jitter, cold caches, page faults),
//   * task exception  — a chunk task throws InjectedFault (the quarantine
//                       path: counted, chunk flagged, pool survives),
//   * worker stall    — a chunk task wedges long enough to freeze its
//                       worker's heartbeat (the watchdog's prey).
//
// Determinism: every decision is a pure function of (seed, task sequence
// number) via splitmix64 — no shared RNG state, so the same plan injects
// the same faults at the same tasks regardless of thread count, ring
// placement, or OS scheduling.  Task sequence numbers are assigned on the
// (single-threaded) submit path, so they are reproducible run to run.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace stash::exec {

/// Thrown by an injected task-exception fault.  Deliberately a distinct
/// type so tests can tell injected failures from real engine errors.
struct InjectedFault : std::runtime_error {
  explicit InjectedFault(std::uint64_t task_seq)
      : std::runtime_error("exec: injected task fault (task #" +
                           std::to_string(task_seq) + ")") {}
};

/// Seeded fault plan for one ParallelQueryEngine.  All-zero rates (the
/// default) means the hooks are completely inert.
struct FaultHooks {
  std::uint64_t seed = 0;

  /// P(chunk task burns task_delay_spins of busy work first).
  double task_delay_rate = 0.0;
  std::uint32_t task_delay_spins = 20'000;

  /// P(chunk task throws InjectedFault instead of evaluating).
  double task_exception_rate = 0.0;

  /// P(chunk task wedges for worker_stall_spins — long enough that the
  /// worker's heartbeat freezes across a watchdog interval).
  double worker_stall_rate = 0.0;
  std::uint32_t worker_stall_spins = 5'000'000;

  [[nodiscard]] bool enabled() const noexcept {
    return task_delay_rate > 0.0 || task_exception_rate > 0.0 ||
           worker_stall_rate > 0.0;
  }
};

/// What the plan injects into one task.  At most one fault fires per task
/// (exception > stall > delay precedence) so rates stay interpretable.
struct FaultDecision {
  bool throw_exception = false;
  bool stall = false;
  bool delay = false;
};

namespace detail {

[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from (seed, task_seq, salt) — platform-stable.
[[nodiscard]] constexpr double fault_draw(std::uint64_t seed,
                                          std::uint64_t task_seq,
                                          std::uint64_t salt) noexcept {
  const std::uint64_t h = splitmix64(seed ^ splitmix64(task_seq + salt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace detail

/// The (pure) injection decision for task number `task_seq`.
[[nodiscard]] inline FaultDecision fault_decision(
    const FaultHooks& hooks, std::uint64_t task_seq) noexcept {
  FaultDecision d;
  if (!hooks.enabled()) return d;
  if (detail::fault_draw(hooks.seed, task_seq, 0x1ull) <
      hooks.task_exception_rate) {
    d.throw_exception = true;
    return d;
  }
  if (detail::fault_draw(hooks.seed, task_seq, 0x2ull) <
      hooks.worker_stall_rate) {
    d.stall = true;
    return d;
  }
  if (detail::fault_draw(hooks.seed, task_seq, 0x3ull) <
      hooks.task_delay_rate) {
    d.delay = true;
  }
  return d;
}

/// Deterministic CPU burn the optimiser cannot elide — the "wedged
/// worker" primitive for stall/delay injection.
inline void fault_busy_spin(std::uint32_t spins) noexcept {
  volatile std::uint64_t sink = 0;
  for (std::uint32_t i = 0; i < spins; ++i) sink = sink + i;
}

}  // namespace stash::exec
