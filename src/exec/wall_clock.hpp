// Wall-clock vs sim oracle harness (DESIGN.md §13).
//
// The discrete-event sim is the correctness oracle for the wall-clock
// execution mode: the same query sequence over the same seed must produce
// byte-identical answers.  "Byte-identical" is made precise by a
// canonical encoding — cells sorted by CellKey, wire-codec bytes — so the
// comparison is independent of unordered_map iteration order, which is
// the only representational freedom the two modes have.
#pragma once

#include <cstdint>
#include <vector>

#include "common/codec.hpp"
#include "exec/parallel_engine.hpp"

namespace stash::exec {

/// Canonical bytes of one answer: cells sorted by CellKey, codec-encoded.
[[nodiscard]] codec::Buffer canonical_answer(const CellSummaryMap& cells);

/// checksum64 over canonical_answer (chained from `seed`).
[[nodiscard]] std::uint64_t answer_digest(const CellSummaryMap& cells,
                                          std::uint64_t seed);

/// What one engine produced over a query sequence.
struct RunResult {
  std::size_t queries = 0;
  std::size_t cells = 0;   ///< total cells across all answers
  std::size_t bytes = 0;   ///< total canonical bytes
  std::uint64_t digest = 0;  ///< chained digest over per-query digests
  std::vector<std::uint64_t> per_query;  ///< digest of each answer
};

/// Oracle run: sequential QueryEngine, absorbing after each query at the
/// deterministic pseudo-time (i + 1) * kMillisecond — the wall-clock run
/// uses the same times, so freshness/eviction state evolves identically.
[[nodiscard]] RunResult run_queries_sim(
    StashGraph& graph, const GalileoStore& store,
    const std::vector<AggregationQuery>& queries,
    EvalMode mode = EvalMode::Cached);

/// Wall-clock run: ParallelQueryEngine with `config.threads` workers.
[[nodiscard]] RunResult run_queries_wallclock(
    StashGraph& graph, const GalileoStore& store,
    const std::vector<AggregationQuery>& queries, const ExecConfig& config,
    EvalMode mode = EvalMode::Cached);

}  // namespace stash::exec
