// Wall-clock execution mode (ROADMAP item 1): shard a query's STASH-graph
// work — cell scan, V-B roll-up, merge — across real worker threads.
//
// The unit of parallelism is the chunk: QueryEngine::evaluate_chunk is
// pure per chunk (a cell belongs to exactly one chunk at a resolution),
// so per-chunk results merge back in the canonical plan order without any
// cross-chunk summary merges.  That is the oracle-equivalence contract
// (DESIGN.md §13): for the same graph state, ParallelQueryEngine and the
// sequential QueryEngine produce answers with identical cell sets and
// bit-identical Summary values, at every thread count — proven by the
// property test in tests/exec/parallel_engine_test.cpp via canonical
// (sorted, codec-encoded) digests.
//
// Locking: workers take the RwSpinlock shared while evaluating (const
// graph reads + Galileo scans); absorb() — the maintenance pass — takes
// it exclusive.  Tasks flow through the WorkerPool's MpmcRings; the
// submitting thread parks on a per-batch WakeupGate until the last chunk
// lands (exec.batch remaining-counter, release/acquire paired).
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "concurrency/rw_spinlock.hpp"
#include "concurrency/worker_pool.hpp"
#include "core/query_engine.hpp"

namespace stash::exec {

struct ExecConfig {
  /// Worker threads; 0 resolves from hardware_concurrency (always >= 1).
  std::size_t threads = 0;
  /// Per-worker MpmcRing capacity (power of two >= 2).
  std::size_t queue_capacity = 256;
};

class ParallelQueryEngine {
 public:
  ParallelQueryEngine(StashGraph& graph, const GalileoStore& store,
                      ExecConfig config = {});

  /// Same contract as QueryEngine::evaluate_partition, answered by the
  /// worker pool.  Blocks the calling thread until the answer is whole.
  [[nodiscard]] Evaluation evaluate_partition(
      std::string_view partition, const AggregationQuery& query,
      EvalMode mode = EvalMode::Cached) const;

  /// Whole-query evaluation: every (partition, chunk) fans out at once;
  /// partitions are merged in the same canonical covering order as
  /// QueryEngine::evaluate.
  [[nodiscard]] Evaluation evaluate(const AggregationQuery& query,
                                    EvalMode mode = EvalMode::Cached) const;

  /// Maintenance pass under the exclusive graph lock.
  MaintenanceStats absorb(const Evaluation& eval, const Resolution& res,
                          sim::SimTime now);

  [[nodiscard]] std::size_t worker_count() const {
    return pool_.worker_count();
  }
  [[nodiscard]] std::size_t queue_depth() const { return pool_.queue_depth(); }
  [[nodiscard]] std::size_t worker_queue_depth(std::size_t i) const {
    return pool_.worker_queue_depth(i);
  }
  [[nodiscard]] concurrency::WorkerStats worker_stats(std::size_t i) const {
    return pool_.worker_stats(i);
  }
  [[nodiscard]] concurrency::WorkerStats total_stats() const {
    return pool_.total_stats();
  }

  /// The sequential engine this executor shards (also the test oracle).
  [[nodiscard]] const QueryEngine& engine() const noexcept { return engine_; }

 private:
  struct ChunkOutcome;
  struct ChunkItem;

  void validate(const AggregationQuery& query) const;
  /// Fan out one batch of chunk tasks and park until the last one lands.
  void run_batch(const std::vector<ChunkItem>& items,
                 const AggregationQuery& query, EvalMode mode,
                 std::vector<ChunkOutcome>& outcomes) const;
  /// Merge one partition's outcome slice into `eval` in canonical chunk
  /// order — the exact merge sequence QueryEngine::evaluate_partition runs.
  static void assemble(const QueryEngine::PartitionPlan& plan,
                       std::vector<ChunkOutcome>& outcomes, std::size_t first,
                       Evaluation& eval);

  QueryEngine engine_;
  mutable concurrency::RwSpinlock graph_lock_;
  mutable concurrency::WorkerPool pool_;
};

}  // namespace stash::exec
