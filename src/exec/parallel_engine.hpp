// Wall-clock execution mode (ROADMAP item 1): shard a query's STASH-graph
// work — cell scan, V-B roll-up, merge — across real worker threads.
//
// The unit of parallelism is the chunk: QueryEngine::evaluate_chunk is
// pure per chunk (a cell belongs to exactly one chunk at a resolution),
// so per-chunk results merge back in the canonical plan order without any
// cross-chunk summary merges.  That is the oracle-equivalence contract
// (DESIGN.md §13): for the same graph state, ParallelQueryEngine and the
// sequential QueryEngine produce answers with identical cell sets and
// bit-identical Summary values, at every thread count — proven by the
// property test in tests/exec/parallel_engine_test.cpp via canonical
// (sorted, codec-encoded) digests.
//
// Robustness contract (DESIGN.md §14): evaluate/evaluate_partition accept
// a wall-clock deadline.  On expiry the submitting thread cancels the
// batch's CancellationToken and returns immediately with whatever is
// honest: only partitions whose every chunk completed contribute cells;
// everything else is reported by name in BatchReport.  Workers probe the
// token between chunks and between per-day cell scans (CancelProbe), so
// outstanding work winds down cooperatively; stragglers finish against
// batch-owned state (shared_ptr) after the submitter has long returned.
// Seeded FaultHooks inject task delays / exceptions / worker stalls for
// the chaos suite — a throwing chunk is recorded per-chunk and the
// partition it belongs to is reported incomplete, never std::terminate.
//
// Locking: workers take the RwSpinlock shared while evaluating (const
// graph reads + Galileo scans); absorb() — the maintenance pass — takes
// it exclusive.  Tasks flow through the WorkerPool's MpmcRings; the
// submitting thread parks on a per-batch WakeupGate until the last chunk
// lands or the deadline fires (commit_wait_until).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "concurrency/rw_spinlock.hpp"
#include "concurrency/worker_pool.hpp"
#include "core/query_engine.hpp"
#include "exec/fault_hooks.hpp"

namespace stash::exec {

struct ExecConfig {
  /// Worker threads; 0 resolves from hardware_concurrency (always >= 1).
  std::size_t threads = 0;
  /// Per-worker MpmcRing capacity (power of two >= 2).
  std::size_t queue_capacity = 256;
  /// Shutdown mode for the pool (see WorkerPool::Config).  Draining is
  /// the default; abandoned tasks are cancelled first (kShutdown) so even
  /// a drain is quick once the engine is going away.
  bool drain_on_shutdown = true;
  /// Stuck-worker watchdog sampling interval (host ns); 0 disables.
  std::uint64_t watchdog_interval_ns = 5'000'000;
  /// Seeded thread-level fault injection (inert by default).
  FaultHooks faults;
};

/// Per-call wall-clock controls.
struct ExecOptions {
  /// Absolute host deadline (exec::host_now_ns() units); 0 = none.  When
  /// it fires, the call returns with a partial-but-honest Evaluation and
  /// BatchReport::deadline_exceeded set.
  std::uint64_t deadline_ns = 0;
};

/// What actually happened to one evaluate call's fan-out.  `complete()`
/// false means the Evaluation is partial: cells cover exactly the
/// partitions NOT listed in incomplete_partitions.
struct BatchReport {
  bool deadline_exceeded = false;
  std::size_t chunks_total = 0;
  std::size_t chunks_completed = 0;
  /// Cancelled by the token, or still outstanding when the submitter
  /// returned (those cancel when they surface).
  std::size_t chunks_cancelled = 0;
  /// Chunk task threw (quarantined; InjectedFault under chaos).
  std::size_t chunks_failed = 0;
  /// Partitions with at least one unfinished/failed chunk — their cells
  /// are withheld entirely (no half-partition answers).
  std::vector<std::string> incomplete_partitions;
  /// First failed chunk's exception (canonical order); null when none.
  /// The legacy (report-less) overloads rethrow it; the deadline
  /// overloads only record it.
  std::exception_ptr first_error;

  [[nodiscard]] bool complete() const noexcept {
    return chunks_completed == chunks_total;
  }
};

/// Engine-lifetime robustness counters (exporter feed; racy snapshot).
struct ExecStats {
  concurrency::WorkerStats pool;       // incl. submit_shed/watchdog_stalls
  std::uint64_t deadline_exceeded = 0;  // evaluate calls that hit a deadline
  std::uint64_t cancelled_chunks = 0;   // chunks cancelled cooperatively
  std::uint64_t task_exceptions = 0;    // chunk tasks that threw
};

class ParallelQueryEngine {
 public:
  ParallelQueryEngine(StashGraph& graph, const GalileoStore& store,
                      ExecConfig config = {});
  ~ParallelQueryEngine();

  /// Same contract as QueryEngine::evaluate_partition, answered by the
  /// worker pool.  Blocks the calling thread until the answer is whole;
  /// rethrows a chunk task's exception (legacy contract).
  [[nodiscard]] Evaluation evaluate_partition(
      std::string_view partition, const AggregationQuery& query,
      EvalMode mode = EvalMode::Cached) const;

  /// Deadline-capable variant: never rethrows chunk errors and never
  /// waits past options.deadline_ns — failures and expiry are reported in
  /// `report`, and the returned Evaluation contains only whole-partition
  /// results.
  [[nodiscard]] Evaluation evaluate_partition(std::string_view partition,
                                              const AggregationQuery& query,
                                              EvalMode mode,
                                              const ExecOptions& options,
                                              BatchReport& report) const;

  /// Whole-query evaluation: every (partition, chunk) fans out at once;
  /// partitions are merged in the same canonical covering order as
  /// QueryEngine::evaluate.
  [[nodiscard]] Evaluation evaluate(const AggregationQuery& query,
                                    EvalMode mode = EvalMode::Cached) const;

  /// Deadline-capable whole-query variant (see above).
  [[nodiscard]] Evaluation evaluate(const AggregationQuery& query,
                                    EvalMode mode, const ExecOptions& options,
                                    BatchReport& report) const;

  /// Maintenance pass under the exclusive graph lock.
  MaintenanceStats absorb(const Evaluation& eval, const Resolution& res,
                          sim::SimTime now);

  [[nodiscard]] std::size_t worker_count() const {
    return pool_.worker_count();
  }
  [[nodiscard]] std::size_t queue_depth() const { return pool_.queue_depth(); }
  [[nodiscard]] std::size_t worker_queue_depth(std::size_t i) const {
    return pool_.worker_queue_depth(i);
  }
  [[nodiscard]] concurrency::WorkerStats worker_stats(std::size_t i) const {
    return pool_.worker_stats(i);
  }
  [[nodiscard]] concurrency::WorkerStats total_stats() const {
    return pool_.total_stats();
  }
  [[nodiscard]] ExecStats exec_stats() const;

  /// The sequential engine this executor shards (also the test oracle).
  [[nodiscard]] const QueryEngine& engine() const noexcept { return engine_; }

 private:
  struct BatchState;

  void validate(const AggregationQuery& query) const;
  /// Fan out the batch and wait — until the last chunk lands, or until
  /// the deadline fires (then the token is cancelled and the wait ends).
  void run_batch(const std::shared_ptr<BatchState>& state,
                 std::uint64_t deadline_ns) const;
  /// One chunk task's body (worker thread, or inline on the submitter
  /// when every ring is full — the bounded-backpressure shed path).
  void run_chunk(const std::shared_ptr<BatchState>& state, std::size_t index,
                 std::uint64_t task_seq) const;
  /// Merge completed whole partitions into an Evaluation; report the rest.
  [[nodiscard]] Evaluation collect(BatchState& state,
                                   BatchReport& report) const;

  QueryEngine engine_;
  ExecConfig config_;
  mutable concurrency::RwSpinlock graph_lock_;
  mutable concurrency::catomic<std::uint64_t> task_seq_;
  mutable concurrency::catomic<std::uint64_t> deadline_exceeded_;
  mutable concurrency::catomic<std::uint64_t> cancelled_chunks_;
  mutable concurrency::catomic<std::uint64_t> task_exceptions_;
  /// Destroyed first (declared last): joins the workers, so no task can
  /// outlive the members above.
  mutable concurrency::WorkerPool pool_;
};

}  // namespace stash::exec
