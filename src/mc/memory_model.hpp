// Axiomatic-ish memory model state for the interleaving model checker.
//
// The checker executes one thread at a time, so every store has a global
// execution order; per location that order *is* the modification order.
// Weak-memory behaviours are modelled on the read side, CDSChecker/relacy
// style: a load may read from any store in a per-location history that is
// neither ruled out by coherence (a thread never re-reads something older
// than what it already read or wrote) nor by happens-before (once your
// vector clock covers a store, every earlier store to that location is
// dead to you).  Acquire/release edges are vector-clock merges carried on
// the stores themselves; fences use the standard pending-clock treatment.
//
// Non-atomic locations (mc::var<T>) keep their real value in the shim and
// are only *checked* here: conflicting accesses not ordered by
// happens-before are reported as data races, which is exactly the C++
// rule — a racy non-atomic program is undefined, so there is no point
// modelling torn values.
//
// Deliberate simplifications (see DESIGN.md §12 for the full list):
//   * seq_cst is approximated by the execution order: an SC load may not
//     read anything older than the latest SC store to its location.
//   * memory_order_consume is treated as acquire.
//   * compare_exchange_weak never fails spuriously.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace stash::mc {

using ThreadId = std::uint32_t;

/// Thread id used for operations performed by the controller (the make()
/// factory and the finally() check), which run single-threaded before and
/// after the explored threads.
inline constexpr ThreadId kControllerThread = 0xffffffffu;

/// Upper bound on explored threads per execution.  The model always
/// allocates this many thread slots so the controller's vector-clock slot
/// (one past the last thread) is stable regardless of scenario size.
inline constexpr std::size_t kMaxModelThreads = 16;

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t n) : t_(n, 0) {}

  [[nodiscard]] std::uint64_t at(std::size_t i) const {
    return i < t_.size() ? t_[i] : 0;
  }
  void set(std::size_t i, std::uint64_t v) {
    if (i >= t_.size()) t_.resize(i + 1, 0);
    t_[i] = v;
  }
  void merge(const VectorClock& o) {
    if (o.t_.size() > t_.size()) t_.resize(o.t_.size(), 0);
    for (std::size_t i = 0; i < o.t_.size(); ++i)
      if (o.t_[i] > t_[i]) t_[i] = o.t_[i];
  }
  [[nodiscard]] bool covers(ThreadId tid, std::uint64_t time) const {
    return at(tid) >= time;
  }
  void clear() { t_.clear(); }

 private:
  std::vector<std::uint64_t> t_;
};

/// One entry in a location's modification order.
struct Store {
  std::uint64_t value = 0;
  ThreadId writer = kControllerThread;
  std::uint64_t writer_time = 0;  // writer's own clock component at the store
  VectorClock release_clock;      // merged into acquiring readers
  bool seq_cst = false;
  bool rmw = false;
};

struct AtomicLocation {
  std::string name;
  std::vector<Store> stores;
  std::ptrdiff_t last_seq_cst = -1;  // index of latest SC store, -1 if none
};

/// Last conflicting accesses to a checked non-atomic location.
struct VarAccess {
  ThreadId thread = kControllerThread;
  std::uint64_t time = 0;
};

struct VarLocation {
  std::string name;
  bool has_write = false;
  VarAccess last_write;
  std::vector<VarAccess> reads_since_write;
};

/// Race report for a non-atomic access pair.
struct RaceReport {
  std::string location;
  std::string prior;    // "write by thread 0" / "read by thread 2"
  std::string current;  // likewise
};

/// Per-thread memory-model state.
struct ThreadMem {
  VectorClock clock;
  // Release clocks of relaxed-read stores, released by the next acquire
  // fence (the fence "upgrades" earlier relaxed loads).
  VectorClock acquire_fence_pending;
  // Clock snapshot at the last release fence; later relaxed stores act as
  // release stores for that snapshot.
  VectorClock release_fence_clock;
  bool has_release_fence = false;
  std::uint64_t next_time = 1;
  std::unordered_map<const void*, std::size_t> last_read_index;
};

/// Whole-execution memory state.  The scheduler resets it per execution,
/// registers locations as the shim constructs them, and consults
/// visible_stores() to enumerate the read choices a load may make.
class MemoryModel {
 public:
  void reset(std::size_t n_threads);

  void register_atomic(const void* loc, const char* name, std::uint64_t bits,
                       ThreadId tid);
  [[nodiscard]] bool knows_atomic(const void* loc) const {
    return atomics_.contains(loc);
  }

  /// Indices into the location's store history this thread may read, in
  /// modification order (oldest candidate first, newest last).
  [[nodiscard]] std::vector<std::size_t> visible_stores(
      const void* loc, ThreadId tid, std::memory_order order) const;

  std::uint64_t commit_load(const void* loc, ThreadId tid, std::size_t index,
                            std::memory_order order);
  void commit_store(const void* loc, ThreadId tid, std::uint64_t bits,
                    std::memory_order order);

  /// Value of the newest store (what an RMW will read).
  [[nodiscard]] std::uint64_t newest_value(const void* loc) const;
  std::uint64_t commit_rmw(const void* loc, ThreadId tid, std::uint64_t bits,
                           std::memory_order order);
  void fail_rmw(const void* loc, ThreadId tid, std::memory_order failure);

  void fence(ThreadId tid, std::memory_order order);

  void register_var(const void* loc, const char* name);
  /// nullopt when the access is ordered; a report when it races.
  std::optional<RaceReport> var_read(const void* loc, ThreadId tid);
  std::optional<RaceReport> var_write(const void* loc, ThreadId tid);

  /// Give every explored thread the controller's clock, modelling the
  /// happens-before edge from setup (the make() factory) into each spawned
  /// thread.  Call once, after setup and before the first thread step.
  void spawn_threads_from_controller();

  /// Merge every explored thread's clock into the controller's, modelling
  /// the happens-before edge of joining all threads before finally().
  void join_all_into_controller();

  [[nodiscard]] const AtomicLocation* find_atomic(const void* loc) const;
  [[nodiscard]] std::string location_name(const void* loc) const;

 private:
  ThreadMem& mem(ThreadId tid);
  [[nodiscard]] const ThreadMem& mem(ThreadId tid) const;
  std::uint64_t bump(ThreadId tid);
  [[nodiscard]] std::size_t min_readable(const AtomicLocation& a,
                                         const void* loc, ThreadId tid) const;
  void apply_load_sync(const Store& s, ThreadId tid, std::memory_order order);

  std::unordered_map<const void*, AtomicLocation> atomics_;
  std::unordered_map<const void*, VarLocation> vars_;
  std::vector<ThreadMem> threads_;
  ThreadMem controller_;
  std::size_t anon_counter_ = 0;
};

}  // namespace stash::mc
