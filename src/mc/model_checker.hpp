// Deterministic interleaving explorer for catomic-instrumented code.
//
// The checker repeatedly executes a small multi-threaded scenario, driving
// every context switch and every weak-memory read choice itself, so that
// bugs which TSan can only catch when the hardware happens to interleave
// the wrong way are found *systematically*:
//
//   * Exhaustive mode (default): depth-first search over all schedules up
//     to a preemption bound (CHESS-style) and over all store-visibility
//     choices the memory model allows (CDSChecker-style).  The seed only
//     rotates the DFS visiting order, so a capped budget samples different
//     regions of the tree; coverage is unchanged.
//   * Random mode: seeded random walks through the same choice space, for
//     scenarios whose full tree is too large.
//
// Every failure is replayable: Result::schedule_string() prints a compact
// "<seed>:<choices>" token, and ModelChecker::replay() re-runs exactly that
// interleaving with a human-readable per-operation trace.
//
// Usage (the factory runs once per execution and must be deterministic —
// tools/stash_lint.py enforces the no-wall-clock/no-rand rules that make
// that true in this tree):
//
//   mc::Result r = mc::ModelChecker(opts).run([] {
//     auto st = std::make_shared<State>();         // fresh state
//     mc::Execution e;
//     e.threads.push_back([st] { st->writer(); });
//     e.threads.push_back([st] { st->reader(); });
//     e.finally = [st] { MC_ASSERT(st->consistent()); };
//     return e;
//   });
//   ASSERT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace stash::mc {

/// One scenario instance: the threads to interleave plus an optional
/// single-threaded invariant check that runs after all threads join.
/// Construct all catomic<T>/var<T> state inside the factory that returns
/// this (the constructor registers locations with the active execution).
struct Execution {
  std::vector<std::function<void()>> threads;
  std::function<void()> finally;
};

struct Options {
  /// DFS budget: stop after this many executions even if unexplored
  /// schedules remain (Result::complete tells you which happened).
  std::uint64_t max_executions = 200000;
  /// Max context switches at points where the running thread could have
  /// continued (CHESS preemption bounding); -1 = unbounded.  Switches at
  /// thread completion are free.
  int preemption_bound = 3;
  /// Rotates DFS visiting order; the RNG seed in random mode.
  std::uint64_t seed = 1;
  /// Random-schedule mode instead of exhaustive DFS.
  bool random = false;
  std::uint64_t random_iterations = 20000;
  /// Per-execution step cap; schedules that spin past it are abandoned
  /// (counted in Result::abandoned), which keeps CAS/retry loops finite.
  std::uint64_t max_steps = 20000;
  /// Re-run a failing schedule automatically to capture Result::trace.
  bool trace_failure = true;
};

struct Result {
  bool bug_found = false;
  std::string bug;
  /// The decision sequence of the failing execution (empty if none).
  std::vector<std::uint32_t> schedule;
  std::uint64_t seed = 0;
  /// The preemption bound the schedule was explored under.  Part of the
  /// replay token: the bound shapes decision fan-out at every scheduling
  /// point, so replaying under a different bound would misalign choices.
  int preemption_bound = -1;
  std::uint64_t executions = 0;
  std::uint64_t abandoned = 0;
  /// True when the DFS exhausted every schedule within bounds.
  bool complete = false;
  /// Human-readable interleaving of the failing schedule.
  std::string trace;

  /// "<seed>:<bound>:<c0>,<c1>,..." — paste into ModelChecker::replay().
  [[nodiscard]] std::string schedule_string() const;
};

class ModelChecker {
 public:
  explicit ModelChecker(Options opts = {});

  /// Explores the scenario; the factory is invoked once per execution.
  Result run(const std::function<Execution()>& make);

  /// Re-runs one exact interleaving (a failing Result, or its printed
  /// schedule_string()) with tracing enabled.  Deterministic: identical
  /// inputs, identical trace.
  static Result replay(const std::function<Execution()>& make,
                       const Result& failure);
  static Result replay(const std::function<Execution()>& make,
                       const std::string& schedule_string);

 private:
  Options opts_;
};

/// Reports a bug in the current execution and unwinds the calling thread.
/// Must only be called from inside a model-checked execution.
[[noreturn]] void fail(const std::string& message);

#define MC_ASSERT_MSG(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::stash::mc::fail(std::string("MC_ASSERT failed: ") + (msg) +     \
                        " at " __FILE__ ":" + std::to_string(__LINE__)); \
    }                                                                   \
  } while (0)

#define MC_ASSERT(cond) MC_ASSERT_MSG(cond, #cond)

}  // namespace stash::mc
