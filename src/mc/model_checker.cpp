// Engine behind mc::ModelChecker: a token-passing scheduler over a pool of
// real OS threads, a stateless DFS/random search over (schedule, read
// choice) decisions, and the hook implementations the catomic shim calls.
//
// Exactly one thread ever runs at a time — the "token" — so engine state
// needs no locking of its own; the token handoff (an atomic flag plus a
// mutex/condvar sleep fallback) provides the happens-before edges.  The
// handoff fast path spins briefly because an execution performs dozens of
// switches and the explorer runs up to hundreds of thousands of
// executions; parking on every switch would dominate the runtime.
//
// stash-lint: allow-file(raw-atomic, relaxed-order) -- the checker runtime
// sits *below* the catomic shim; its own token flags cannot be
// model-checked state, and their orderings are local to the handoff.
#include "mc/model_checker.hpp"

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/rng.hpp"
#include "mc/hooks.hpp"
#include "mc/memory_model.hpp"

namespace stash::mc {

namespace {

/// Unwinds a model-checked thread when the execution ends early (bug found
/// or step cap hit).  Never escapes the engine.
struct Bailout {};

[[nodiscard]] const char* order_name(std::memory_order o) {
  switch (o) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "?";
}

[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Engine;
Engine* g_engine = nullptr;  // written only while all workers are parked
thread_local ThreadId tls_tid = kControllerThread;

/// One pooled OS thread.  go/exit form the token: set-then-notify on the
/// signalling side, spin-then-sleep on the waiting side.
struct WorkerSlot {
  std::thread th;
  std::mutex m;
  std::condition_variable cv;
  std::atomic<bool> go{false};
  std::atomic<bool> exit{false};
};

struct Decision {
  std::uint32_t n = 0;       // options at this point
  std::uint32_t base = 0;    // DFS counter (pre-rotation)
  std::uint32_t actual = 0;  // option actually taken
};

enum class Mode { kDfs, kRandom, kReplay };

class Engine {
 public:
  Engine(const Options& opts, Mode mode,
         std::vector<std::uint32_t> replay_schedule)
      : opts_(opts),
        mode_(mode),
        replay_schedule_(std::move(replay_schedule)),
        rng_(opts.seed) {}

  ~Engine() {
    for (std::size_t i = 0; i < n_workers_; ++i) {
      workers_[i]->exit.store(true, std::memory_order_relaxed);
      signal(*workers_[i]);
    }
    for (std::size_t i = 0; i < n_workers_; ++i)
      if (workers_[i]->th.joinable()) workers_[i]->th.join();
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Result explore(const std::function<Execution()>& make) {
    Result res;
    res.seed = opts_.seed;
    res.preemption_bound = opts_.preemption_bound;
    const std::uint64_t budget =
        mode_ == Mode::kReplay
            ? 1
            : (mode_ == Mode::kRandom ? opts_.random_iterations
                                      : opts_.max_executions);
    for (std::uint64_t i = 0; i < budget; ++i) {
      run_one(make);
      ++res.executions;
      if (abandoned_) ++res.abandoned;
      if (bug_found_) {
        res.bug_found = true;
        res.bug = bug_msg_;
        res.schedule = actuals_;
        break;
      }
      if (mode_ == Mode::kDfs && !dfs_backtrack()) {
        res.complete = true;
        break;
      }
    }
    if (mode_ == Mode::kReplay) {
      res.trace = render_trace();
      res.schedule = actuals_;
    }
    return res;
  }

  void enable_tracing() { tracing_ = true; }

  // ---- called from hooks (token holder only) ----

  void sched_point() {
    if (tls_tid == kControllerThread) return;
    // Hooks run inside destructors during Bailout unwinding (RAII lock
    // guards releasing on the way out); throwing there would terminate.
    // Let the in-flight exception finish — the execution is over anyway.
    const bool unwinding = std::uncaught_exceptions() > 0;
    if (bailing_) {
      if (unwinding) return;
      throw Bailout{};
    }
    if (++steps_ > opts_.max_steps) {
      abandoned_ = true;
      bailing_ = true;
      if (unwinding) return;
      throw Bailout{};
    }
    const ThreadId me = tls_tid;
    std::uint32_t options[kMaxModelThreads];
    std::uint32_t n = 0;
    options[n++] = me;  // staying put is always option 0
    const bool can_preempt =
        opts_.preemption_bound < 0 ||
        preemptions_ < static_cast<std::uint64_t>(opts_.preemption_bound);
    if (can_preempt) {
      for (std::uint32_t t = 0; t < n_threads_; ++t)
        if (t != me && !done_[t]) options[n++] = t;
    }
    const std::uint32_t pick = n == 1 ? 0 : decide(n);
    const ThreadId next = options[pick];
    if (next != me) {
      ++preemptions_;
      pass_token(next);
      wait_token(*workers_[me]);
      if (bailing_) throw Bailout{};
    }
  }

  std::uint32_t decide(std::uint32_t n) {
    std::uint32_t actual = 0;
    switch (mode_) {
      case Mode::kReplay: {
        if (depth_ >= replay_schedule_.size() || replay_schedule_[depth_] >= n)
          die("replay schedule does not match this scenario");
        actual = replay_schedule_[depth_];
        break;
      }
      case Mode::kRandom: {
        actual = static_cast<std::uint32_t>(rng_.next_below(n));
        break;
      }
      case Mode::kDfs: {
        if (depth_ < stack_.size()) {
          if (stack_[depth_].n != n)
            die("model-checked scenario is nondeterministic: decision "
                "fan-out changed between executions (wall clock or unseeded "
                "RNG in the test?)");
        } else {
          stack_.push_back(Decision{n, 0, 0});
        }
        const std::uint32_t rot =
            static_cast<std::uint32_t>(splitmix64(opts_.seed ^ depth_) % n);
        actual = (stack_[depth_].base + rot) % n;
        stack_[depth_].actual = actual;
        break;
      }
    }
    actuals_.push_back(actual);
    ++depth_;
    return actual;
  }

  void report_bug(const std::string& msg) {
    if (!bug_found_) {
      bug_found_ = true;
      bug_msg_ = msg;
    }
    bailing_ = true;
  }

  [[nodiscard]] ThreadId current() const { return tls_tid; }
  [[nodiscard]] bool bailing() const { return bailing_; }
  MemoryModel& model() { return model_; }
  [[nodiscard]] bool tracing() const { return tracing_; }

  void trace_line(const std::string& line) {
    trace_.push_back("  #" + std::to_string(trace_.size()) + " " + line);
  }

  [[nodiscard]] std::string thread_label() const {
    return tls_tid == kControllerThread
               ? std::string("C ")
               : "T" + std::to_string(tls_tid);
  }

 private:
  [[noreturn]] static void die(const char* what) {
    std::fprintf(stderr, "stash::mc::ModelChecker: %s\n", what);
    std::abort();
  }

  void run_one(const std::function<Execution()>& make) {
    model_.reset(kMaxModelThreads);
    depth_ = 0;
    steps_ = 0;
    preemptions_ = 0;
    bug_found_ = false;
    bailing_ = false;
    abandoned_ = false;
    bug_msg_.clear();
    actuals_.clear();
    trace_.clear();

    g_engine = this;
    Execution exec;
    try {
      exec = make();
    } catch (const Bailout&) {
    }
    if (exec.threads.size() > kMaxModelThreads)
      die("too many threads in scenario (kMaxModelThreads)");
    n_threads_ = static_cast<std::uint32_t>(exec.threads.size());
    exec_ = &exec;
    done_.assign(n_threads_, 0);
    ensure_workers(n_threads_);

    if (!bailing_ && n_threads_ > 0) {
      model_.spawn_threads_from_controller();
      // The first runnable thread is itself a scheduling decision.
      const std::uint32_t first =
          n_threads_ == 1 ? 0 : decide(n_threads_);
      finished_ = false;
      pass_token(first);
      std::unique_lock<std::mutex> lk(main_m_);
      main_cv_.wait(lk, [&] { return finished_; });
    }

    if (!bailing_ && exec.finally) {
      model_.join_all_into_controller();
      try {
        exec.finally();
      } catch (const Bailout&) {
      }
    }
    exec_ = nullptr;
    // Destroy thread closures (and the shared state they own) before
    // deactivating: var<T> teardown is hook-free either way.
    exec = Execution{};
    g_engine = nullptr;
  }

  bool dfs_backtrack() {
    while (!stack_.empty() && stack_.back().base + 1 >= stack_.back().n)
      stack_.pop_back();
    if (stack_.empty()) return false;
    ++stack_.back().base;
    return true;
  }

  void ensure_workers(std::uint32_t n) {
    // The slot must be fully installed before its thread starts: the worker
    // dereferences workers_[idx] immediately, and a push-into-vector here
    // would race slot installation (and buffer reallocation) against
    // earlier workers already parked on their own slots.
    while (n_workers_ < n) {
      const std::uint32_t idx = static_cast<std::uint32_t>(n_workers_);
      workers_[idx] = std::make_unique<WorkerSlot>();
      workers_[idx]->th = std::thread([this, idx] { worker_main(idx); });
      ++n_workers_;
    }
  }

  void worker_main(std::uint32_t idx) {
    tls_tid = idx;
    WorkerSlot& me = *workers_[idx];
    for (;;) {
      wait_token(me);
      if (me.exit.load(std::memory_order_relaxed)) return;
      run_thread(idx);
    }
  }

  void run_thread(std::uint32_t idx) {
    if (!bailing_) {
      try {
        (*exec_).threads[idx]();
      } catch (const Bailout&) {
      } catch (const std::exception& ex) {
        report_bug(std::string("unhandled exception in thread ") +
                   std::to_string(idx) + ": " + ex.what());
      } catch (...) {
        report_bug("unhandled non-std exception in thread " +
                   std::to_string(idx));
      }
    }
    done_[idx] = 1;
    std::uint32_t runnable[kMaxModelThreads];
    std::uint32_t n = 0;
    for (std::uint32_t t = 0; t < n_threads_; ++t)
      if (!done_[t]) runnable[n++] = t;
    if (n == 0) {
      {
        std::lock_guard<std::mutex> lk(main_m_);
        finished_ = true;
      }
      main_cv_.notify_one();
      return;
    }
    // A switch away from a finished thread is free (not a preemption).
    const std::uint32_t next =
        (bailing_ || n == 1) ? runnable[0] : runnable[decide(n)];
    pass_token(next);
  }

  static void signal(WorkerSlot& w) {
    w.go.store(true, std::memory_order_release);
    { std::lock_guard<std::mutex> lk(w.m); }  // orders store before wait check
    w.cv.notify_one();
  }

  void pass_token(std::uint32_t next) { signal(*workers_[next]); }

  static void wait_token(WorkerSlot& me) {
    for (int spin = 0; spin < 4096; ++spin) {
      if (me.go.load(std::memory_order_acquire)) {
        me.go.store(false, std::memory_order_relaxed);
        return;
      }
    }
    std::unique_lock<std::mutex> lk(me.m);
    me.cv.wait(lk, [&] { return me.go.load(std::memory_order_acquire); });
    me.go.store(false, std::memory_order_relaxed);
  }

  [[nodiscard]] std::string render_trace() const {
    std::string out;
    for (const std::string& line : trace_) {
      out += line;
      out += '\n';
    }
    return out;
  }

  const Options opts_;
  const Mode mode_;
  const std::vector<std::uint32_t> replay_schedule_;
  Rng rng_;
  MemoryModel model_;

  std::array<std::unique_ptr<WorkerSlot>, kMaxModelThreads> workers_;
  std::size_t n_workers_ = 0;
  std::vector<char> done_;
  std::uint32_t n_threads_ = 0;
  Execution* exec_ = nullptr;

  std::mutex main_m_;
  std::condition_variable main_cv_;
  bool finished_ = false;

  std::vector<Decision> stack_;
  std::size_t depth_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t preemptions_ = 0;
  bool bug_found_ = false;
  bool bailing_ = false;
  bool abandoned_ = false;
  std::string bug_msg_;
  std::vector<std::uint32_t> actuals_;
  bool tracing_ = false;
  std::vector<std::string> trace_;
};

[[nodiscard]] Engine& require_engine(const char* op) {
  if (g_engine == nullptr) {
    std::fprintf(stderr,
                 "stash::mc: %s outside a ModelChecker execution — construct "
                 "catomic state inside the make() factory\n",
                 op);
    std::abort();
  }
  return *g_engine;
}

}  // namespace

// ---- public API ----

std::string Result::schedule_string() const {
  std::ostringstream os;
  os << seed << ':' << preemption_bound << ':';
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (i != 0) os << ',';
    os << schedule[i];
  }
  return os.str();
}

ModelChecker::ModelChecker(Options opts) : opts_(opts) {}

Result ModelChecker::run(const std::function<Execution()>& make) {
  Result res;
  {
    Engine engine(opts_, opts_.random ? Mode::kRandom : Mode::kDfs, {});
    res = engine.explore(make);
  }
  if (res.bug_found && opts_.trace_failure) {
    Result replayed = replay(make, res);
    res.trace = std::move(replayed.trace);
  }
  return res;
}

Result ModelChecker::replay(const std::function<Execution()>& make,
                            const Result& failure) {
  Options opts;
  opts.seed = failure.seed;
  // The bound is part of the interleaving's identity: it decides which
  // scheduling points branch at all (see Result::preemption_bound).
  opts.preemption_bound = failure.preemption_bound;
  // Step budget must never cut a replay short: the original failing run
  // reached its bug within its own cap, and replay repeats it exactly.
  opts.max_steps = std::numeric_limits<std::uint64_t>::max();
  Engine engine(opts, Mode::kReplay, failure.schedule);
  engine.enable_tracing();
  Result res = engine.explore(make);
  res.seed = failure.seed;
  res.preemption_bound = failure.preemption_bound;
  return res;
}

Result ModelChecker::replay(const std::function<Execution()>& make,
                            const std::string& schedule_string) {
  Result failure;
  failure.seed = 1;
  std::string list = schedule_string;
  const std::size_t c1 = list.find(':');
  if (c1 != std::string::npos) {
    failure.seed = std::strtoull(list.substr(0, c1).c_str(), nullptr, 10);
    list = list.substr(c1 + 1);
    const std::size_t c2 = list.find(':');
    if (c2 != std::string::npos) {
      failure.preemption_bound =
          static_cast<int>(std::strtol(list.substr(0, c2).c_str(), nullptr, 10));
      list = list.substr(c2 + 1);
    }
  }
  std::istringstream is(list);
  std::string tok;
  while (std::getline(is, tok, ','))
    if (!tok.empty())
      failure.schedule.push_back(
          static_cast<std::uint32_t>(std::strtoul(tok.c_str(), nullptr, 10)));
  return replay(make, failure);
}

void fail(const std::string& message) {
  Engine& e = require_engine("mc::fail");
  e.report_bug(message);
  throw Bailout{};
}

// ---- hooks (see mc/hooks.hpp for the contract) ----

void hook_atomic_init(const void* loc, const char* name, std::uint64_t bits) {
  Engine& e = require_engine("catomic construction");
  e.model().register_atomic(loc, name, bits, e.current());
}

std::uint64_t hook_atomic_load(const void* loc, std::memory_order order) {
  Engine& e = require_engine("catomic load");
  e.sched_point();
  const ThreadId tid = e.current();
  const std::vector<std::size_t> vis =
      e.model().visible_stores(loc, tid, order);
  // The controller (setup/finally) is fully synchronised, so it reads the
  // newest store; explored threads choose — a decision the DFS enumerates.
  std::size_t idx = vis.back();
  if (vis.size() > 1 && tid != kControllerThread)
    idx = vis[e.decide(static_cast<std::uint32_t>(vis.size()))];
  const std::uint64_t v = e.model().commit_load(loc, tid, idx, order);
  if (e.tracing())
    e.trace_line(e.thread_label() + " load  " + e.model().location_name(loc) +
                 "(" + order_name(order) + ") -> " + std::to_string(v) +
                 " [store#" + std::to_string(idx) + "]");
  return v;
}

void hook_atomic_store(const void* loc, std::uint64_t bits,
                       std::memory_order order) {
  Engine& e = require_engine("catomic store");
  e.sched_point();
  e.model().commit_store(loc, e.current(), bits, order);
  if (e.tracing())
    e.trace_line(e.thread_label() + " store " + e.model().location_name(loc) +
                 "(" + order_name(order) + ") <- " + std::to_string(bits));
}

std::uint64_t hook_rmw_begin(const void* loc, std::memory_order order) {
  Engine& e = require_engine("catomic rmw");
  (void)order;
  e.sched_point();
  return e.model().newest_value(loc);
}

void hook_rmw_commit(const void* loc, std::uint64_t bits,
                     std::memory_order order) {
  Engine& e = require_engine("catomic rmw");
  const std::uint64_t old = e.model().commit_rmw(loc, e.current(), bits, order);
  if (e.tracing())
    e.trace_line(e.thread_label() + " rmw   " + e.model().location_name(loc) +
                 "(" + order_name(order) + ") " + std::to_string(old) +
                 " -> " + std::to_string(bits));
}

void hook_rmw_fail(const void* loc, std::memory_order failure_order) {
  Engine& e = require_engine("catomic rmw");
  e.model().fail_rmw(loc, e.current(), failure_order);
  if (e.tracing())
    e.trace_line(e.thread_label() + " cas-fail " +
                 e.model().location_name(loc) + "(" +
                 order_name(failure_order) + ")");
}

void hook_fence(std::memory_order order) {
  Engine& e = require_engine("catomic fence");
  e.sched_point();
  e.model().fence(e.current(), order);
  if (e.tracing())
    e.trace_line(e.thread_label() + " fence(" + order_name(order) + ")");
}

void hook_var_init(const void* loc, const char* name) {
  if (g_engine == nullptr) return;  // var<T> is usable outside executions
  g_engine->model().register_var(loc, name);
}

namespace {
void var_access(const void* loc, bool is_write) {
  if (g_engine == nullptr) return;  // post-run inspection: plain access
  Engine& e = *g_engine;
  e.sched_point();
  if (e.bailing()) return;  // teardown during unwinding: nothing to check
  auto race = is_write ? e.model().var_write(loc, e.current())
                       : e.model().var_read(loc, e.current());
  if (e.tracing())
    e.trace_line(e.thread_label() + (is_write ? " write " : " read  ") +
                 e.model().location_name(loc) + " (non-atomic)");
  if (race.has_value()) {
    fail("data race on " + race->location + ": " + race->prior +
         " is unordered with " + race->current);
  }
}
}  // namespace

void hook_var_read(const void* loc) { var_access(loc, false); }
void hook_var_write(const void* loc) { var_access(loc, true); }

}  // namespace stash::mc
