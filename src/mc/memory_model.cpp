#include "mc/memory_model.hpp"

#include <cstdio>
#include <cstdlib>

namespace stash::mc {

namespace {

[[nodiscard]] bool has_acquire(std::memory_order o) {
  return o == std::memory_order_acquire || o == std::memory_order_consume ||
         o == std::memory_order_acq_rel || o == std::memory_order_seq_cst;
}

[[nodiscard]] bool has_release(std::memory_order o) {
  return o == std::memory_order_release || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst;
}

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "stash::mc::MemoryModel: %s\n", what);
  std::abort();
}

}  // namespace

void MemoryModel::reset(std::size_t n_threads) {
  atomics_.clear();
  vars_.clear();
  threads_.assign(n_threads, ThreadMem{});
  controller_ = ThreadMem{};
  anon_counter_ = 0;
}

ThreadMem& MemoryModel::mem(ThreadId tid) {
  if (tid == kControllerThread) return controller_;
  if (tid >= threads_.size()) die("operation from unregistered thread");
  return threads_[tid];
}

const ThreadMem& MemoryModel::mem(ThreadId tid) const {
  if (tid == kControllerThread) return controller_;
  if (tid >= threads_.size()) die("operation from unregistered thread");
  return threads_[tid];
}

// Vector clocks are indexed by a dense slot: explored threads use their id,
// the controller uses the slot one past them.
std::uint64_t MemoryModel::bump(ThreadId tid) {
  ThreadMem& m = mem(tid);
  const std::size_t slot =
      tid == kControllerThread ? threads_.size() : tid;
  const std::uint64_t now = m.next_time++;
  m.clock.set(slot, now);
  return now;
}

void MemoryModel::register_atomic(const void* loc, const char* name,
                                  std::uint64_t bits, ThreadId tid) {
  AtomicLocation& a = atomics_[loc];  // re-registration resets the history
  a.stores.clear();
  a.last_seq_cst = -1;
  a.name = name != nullptr
               ? std::string(name)
               : "atomic#" + std::to_string(anon_counter_++);
  // The initial value behaves like a release store by the creator: anyone
  // who can see the object can see its initialisation (in real code the
  // constructor is sequenced before any thread that receives the object).
  Store init;
  init.value = bits;
  init.writer = tid == kControllerThread
                    ? static_cast<ThreadId>(threads_.size())
                    : tid;
  init.writer_time = bump(tid);
  init.release_clock = mem(tid).clock;
  a.stores.push_back(std::move(init));
  mem(tid).last_read_index[loc] = 0;
}

const AtomicLocation* MemoryModel::find_atomic(const void* loc) const {
  auto it = atomics_.find(loc);
  return it == atomics_.end() ? nullptr : &it->second;
}

std::string MemoryModel::location_name(const void* loc) const {
  if (const AtomicLocation* a = find_atomic(loc); a != nullptr) return a->name;
  if (auto it = vars_.find(loc); it != vars_.end()) return it->second.name;
  return "<unknown>";
}

std::size_t MemoryModel::min_readable(const AtomicLocation& a, const void* loc,
                                      ThreadId tid) const {
  const ThreadMem& m = mem(tid);
  std::size_t min_idx = 0;
  if (auto it = m.last_read_index.find(loc); it != m.last_read_index.end())
    min_idx = it->second;
  // Happens-before: if this thread's clock covers store j, stores < j are
  // no longer readable (they are overwritten in the part of the
  // modification order the thread provably observed).
  for (std::size_t j = a.stores.size(); j-- > min_idx + 1;) {
    const Store& s = a.stores[j];
    if (m.clock.covers(s.writer, s.writer_time)) {
      min_idx = j;
      break;
    }
  }
  return min_idx;
}

std::vector<std::size_t> MemoryModel::visible_stores(
    const void* loc, ThreadId tid, std::memory_order order) const {
  const AtomicLocation* a = find_atomic(loc);
  if (a == nullptr) die("load from unregistered atomic location");
  std::size_t min_idx = min_readable(*a, loc, tid);
  // SC approximation: the SC total order is the execution order, so an SC
  // load may not read anything older than the latest SC store.
  if (order == std::memory_order_seq_cst && a->last_seq_cst >= 0)
    min_idx = std::max(min_idx, static_cast<std::size_t>(a->last_seq_cst));
  std::vector<std::size_t> out;
  out.reserve(a->stores.size() - min_idx);
  for (std::size_t j = min_idx; j < a->stores.size(); ++j) out.push_back(j);
  return out;
}

void MemoryModel::apply_load_sync(const Store& s, ThreadId tid,
                                  std::memory_order order) {
  ThreadMem& m = mem(tid);
  if (has_acquire(order)) {
    m.clock.merge(s.release_clock);
  } else {
    // A later acquire fence turns this relaxed load into an acquire of
    // everything it read.
    m.acquire_fence_pending.merge(s.release_clock);
  }
}

std::uint64_t MemoryModel::commit_load(const void* loc, ThreadId tid,
                                       std::size_t index,
                                       std::memory_order order) {
  auto it = atomics_.find(loc);
  if (it == atomics_.end()) die("load from unregistered atomic location");
  AtomicLocation& a = it->second;
  if (index >= a.stores.size()) die("commit_load index out of range");
  bump(tid);
  mem(tid).last_read_index[loc] = index;  // coherence: never go back
  apply_load_sync(a.stores[index], tid, order);
  return a.stores[index].value;
}

void MemoryModel::commit_store(const void* loc, ThreadId tid,
                               std::uint64_t bits, std::memory_order order) {
  auto it = atomics_.find(loc);
  if (it == atomics_.end()) die("store to unregistered atomic location");
  AtomicLocation& a = it->second;
  ThreadMem& m = mem(tid);
  const std::size_t slot =
      tid == kControllerThread ? threads_.size() : tid;
  Store s;
  s.value = bits;
  s.writer = static_cast<ThreadId>(slot);
  s.writer_time = bump(tid);
  if (has_release(order)) {
    s.release_clock = m.clock;
  } else if (m.has_release_fence) {
    s.release_clock = m.release_fence_clock;
  }
  s.seq_cst = order == std::memory_order_seq_cst;
  a.stores.push_back(std::move(s));
  const std::size_t idx = a.stores.size() - 1;
  m.last_read_index[loc] = idx;
  if (order == std::memory_order_seq_cst)
    a.last_seq_cst = static_cast<std::ptrdiff_t>(idx);
}

std::uint64_t MemoryModel::newest_value(const void* loc) const {
  const AtomicLocation* a = find_atomic(loc);
  if (a == nullptr || a->stores.empty()) die("RMW on unregistered location");
  return a->stores.back().value;
}

std::uint64_t MemoryModel::commit_rmw(const void* loc, ThreadId tid,
                                      std::uint64_t bits,
                                      std::memory_order order) {
  auto it = atomics_.find(loc);
  if (it == atomics_.end()) die("RMW on unregistered atomic location");
  AtomicLocation& a = it->second;
  ThreadMem& m = mem(tid);
  const std::size_t read_idx = a.stores.size() - 1;
  const std::uint64_t old = a.stores[read_idx].value;
  bump(tid);
  m.last_read_index[loc] = read_idx;
  apply_load_sync(a.stores[read_idx], tid, order);

  const std::size_t slot =
      tid == kControllerThread ? threads_.size() : tid;
  Store s;
  s.value = bits;
  s.writer = static_cast<ThreadId>(slot);
  s.writer_time = bump(tid);
  if (has_release(order)) {
    s.release_clock = m.clock;
  } else if (m.has_release_fence) {
    s.release_clock = m.release_fence_clock;
  }
  // An RMW continues the release sequence headed by the store it read:
  // acquiring readers of this store synchronise with the original
  // release even if this RMW itself is relaxed.
  s.release_clock.merge(a.stores[read_idx].release_clock);
  s.seq_cst = order == std::memory_order_seq_cst;
  s.rmw = true;
  a.stores.push_back(std::move(s));
  const std::size_t idx = a.stores.size() - 1;
  m.last_read_index[loc] = idx;
  if (order == std::memory_order_seq_cst)
    a.last_seq_cst = static_cast<std::ptrdiff_t>(idx);
  return old;
}

void MemoryModel::fail_rmw(const void* loc, ThreadId tid,
                           std::memory_order failure) {
  auto it = atomics_.find(loc);
  if (it == atomics_.end()) die("RMW on unregistered atomic location");
  AtomicLocation& a = it->second;
  const std::size_t read_idx = a.stores.size() - 1;
  bump(tid);
  mem(tid).last_read_index[loc] = read_idx;
  apply_load_sync(a.stores[read_idx], tid, failure);
}

void MemoryModel::fence(ThreadId tid, std::memory_order order) {
  ThreadMem& m = mem(tid);
  bump(tid);
  if (has_acquire(order)) m.clock.merge(m.acquire_fence_pending);
  if (has_release(order)) {
    m.release_fence_clock = m.clock;
    m.has_release_fence = true;
  }
}

void MemoryModel::register_var(const void* loc, const char* name) {
  VarLocation& v = vars_[loc];
  v.has_write = false;
  v.reads_since_write.clear();
  v.name = name != nullptr ? std::string(name)
                           : "var#" + std::to_string(anon_counter_++);
}

namespace {
std::string describe(const char* kind, ThreadId slot, std::size_t n_threads) {
  std::string who = slot == n_threads ? std::string("controller")
                                      : "thread " + std::to_string(slot);
  return std::string(kind) + " by " + who;
}
}  // namespace

std::optional<RaceReport> MemoryModel::var_read(const void* loc,
                                                ThreadId tid) {
  auto it = vars_.find(loc);
  if (it == vars_.end()) register_var(loc, nullptr), it = vars_.find(loc);
  VarLocation& v = it->second;
  ThreadMem& m = mem(tid);
  const std::size_t slot =
      tid == kControllerThread ? threads_.size() : tid;
  const std::uint64_t now = bump(tid);
  if (v.has_write && !m.clock.covers(v.last_write.thread, v.last_write.time)) {
    return RaceReport{
        v.name, describe("write", v.last_write.thread, threads_.size()),
        describe("read", static_cast<ThreadId>(slot), threads_.size())};
  }
  v.reads_since_write.push_back({static_cast<ThreadId>(slot), now});
  return std::nullopt;
}

std::optional<RaceReport> MemoryModel::var_write(const void* loc,
                                                 ThreadId tid) {
  auto it = vars_.find(loc);
  if (it == vars_.end()) register_var(loc, nullptr), it = vars_.find(loc);
  VarLocation& v = it->second;
  ThreadMem& m = mem(tid);
  const std::size_t slot =
      tid == kControllerThread ? threads_.size() : tid;
  const std::uint64_t now = bump(tid);
  if (v.has_write && !m.clock.covers(v.last_write.thread, v.last_write.time)) {
    return RaceReport{
        v.name, describe("write", v.last_write.thread, threads_.size()),
        describe("write", static_cast<ThreadId>(slot), threads_.size())};
  }
  for (const VarAccess& r : v.reads_since_write) {
    if (r.thread == slot) continue;  // own earlier read is program-ordered
    if (!m.clock.covers(r.thread, r.time)) {
      return RaceReport{
          v.name, describe("read", r.thread, threads_.size()),
          describe("write", static_cast<ThreadId>(slot), threads_.size())};
    }
  }
  v.has_write = true;
  v.last_write = {static_cast<ThreadId>(slot), now};
  v.reads_since_write.clear();
  return std::nullopt;
}

void MemoryModel::spawn_threads_from_controller() {
  for (ThreadMem& t : threads_) {
    t.clock.merge(controller_.clock);
    // Everything setup wrote is the newest the thread knows; coherence
    // floors come from the clock, not last_read_index, so nothing else to
    // seed here.
  }
}

void MemoryModel::join_all_into_controller() {
  for (const ThreadMem& t : threads_) controller_.clock.merge(t.clock);
}

}  // namespace stash::mc
