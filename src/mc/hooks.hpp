// Instrumentation hooks between the catomic shim and the model checker.
//
// Under STASH_MODEL_CHECK, every catomic<T>/var<T> operation in
// concurrency/catomic.hpp routes through these free functions instead of
// touching real std::atomic state.  The active mc::ModelChecker execution
// owns all values (per-location store histories, vector clocks); the shim
// only converts T to and from raw 64-bit payloads.
//
// Contract:
//   * hook_atomic_* and hook_var_* may only be called while an execution is
//     active (inside the make() factory, a model-checked thread, or the
//     finally() check).  Atomic hooks outside an execution abort loudly;
//     var hooks degrade to unchecked plain accesses so test code may
//     inspect state after ModelChecker::run returns.
//   * hook_rmw_begin schedules and returns the current value of the last
//     store in modification order *without* committing anything.  The shim
//     must follow it with exactly one of hook_rmw_commit (successful RMW:
//     read + new store, continuing any release sequence) or hook_rmw_fail
//     (failed CAS: load semantics of the failure order) before the next
//     hook call on any location.
#pragma once

#include <atomic>
#include <cstdint>

namespace stash::mc {

void hook_atomic_init(const void* loc, const char* name, std::uint64_t bits);
[[nodiscard]] std::uint64_t hook_atomic_load(const void* loc,
                                             std::memory_order order);
void hook_atomic_store(const void* loc, std::uint64_t bits,
                       std::memory_order order);
[[nodiscard]] std::uint64_t hook_rmw_begin(const void* loc,
                                           std::memory_order order);
void hook_rmw_commit(const void* loc, std::uint64_t bits,
                     std::memory_order order);
void hook_rmw_fail(const void* loc, std::memory_order failure_order);
void hook_fence(std::memory_order order);

void hook_var_init(const void* loc, const char* name);
void hook_var_read(const void* loc);
void hook_var_write(const void* loc);

}  // namespace stash::mc
