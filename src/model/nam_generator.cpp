#include "model/nam_generator.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/civil_time.hpp"
#include "common/hash.hpp"

namespace stash {
namespace {

/// Deterministic unit-interval noise from a record's identity.
double noise01(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
               std::uint64_t c, std::uint64_t d) {
  std::uint64_t h = seed;
  hash_combine(h, a);
  hash_combine(h, b);
  hash_combine(h, c);
  hash_combine(h, d);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

NamGenerator::NamGenerator(NamGeneratorConfig config) : config_(config) {
  if (config_.grid_spacing_deg <= 0.0)
    throw std::invalid_argument("NamGenerator: grid spacing must be positive");
  if (config_.observations_per_day < 1 || config_.observations_per_day > 24)
    throw std::invalid_argument("NamGenerator: observations_per_day in [1,24]");
  if (!config_.coverage.valid())
    throw std::invalid_argument("NamGenerator: invalid coverage box");
}

NamGenerator::GridRange NamGenerator::lat_range(double lo, double hi) const noexcept {
  const double step = config_.grid_spacing_deg;
  GridRange r;
  r.lo = static_cast<std::int64_t>(std::ceil(lo / step));
  r.hi = static_cast<std::int64_t>(std::floor(hi / step));
  // Exclusive upper edge: a grid point exactly on `hi` belongs to the next
  // region, keeping adjacent block scans disjoint.
  if (static_cast<double>(r.hi) * step >= hi) --r.hi;
  if (static_cast<double>(r.lo) * step < lo) ++r.lo;
  return r;
}

NamGenerator::GridRange NamGenerator::lng_range(double lo, double hi) const noexcept {
  return lat_range(lo, hi);  // same axis-independent arithmetic
}

Observation NamGenerator::at(std::int64_t lat_idx, std::int64_t lng_idx,
                             std::int64_t day, int synoptic_slot,
                             std::uint64_t seed_mix) const {
  const double step = config_.grid_spacing_deg;
  const double lat = static_cast<double>(lat_idx) * step;
  const double lng = static_cast<double>(lng_idx) * step;
  const int hour = synoptic_slot * (24 / config_.observations_per_day);
  const std::int64_t ts = day * 86400 + hour * 3600;

  const CivilDate date = civil_from_days(day);
  const double day_of_year = static_cast<double>(days_from_civil(date) -
                                                 days_from_civil({date.year, 1, 1}));
  constexpr double kTau = 2.0 * std::numbers::pi;
  // Season phase peaks in early July in the northern hemisphere.
  const double season = std::cos(kTau * (day_of_year - 186.0) / 365.0);
  const double diurnal = std::cos(kTau * (static_cast<double>(hour) - 15.0) / 24.0);

  const auto u = [&](std::uint64_t salt) {
    return noise01(config_.seed + salt + mix64(seed_mix),
                   static_cast<std::uint64_t>(lat_idx),
                   static_cast<std::uint64_t>(lng_idx),
                   static_cast<std::uint64_t>(day),
                   static_cast<std::uint64_t>(synoptic_slot));
  };

  Observation obs;
  obs.position = {lat, lng};
  obs.timestamp = ts;
  // Surface temperature: warm equator, cold poles, seasonal + diurnal swing.
  obs.values[0] = 288.0 - 0.55 * std::fabs(lat) + 12.0 * season +
                  5.0 * diurnal + 4.0 * (u(1) - 0.5);
  // Relative humidity: anticorrelated with temperature anomaly, bounded.
  obs.values[1] =
      std::clamp(65.0 - 8.0 * season - 6.0 * diurnal + 30.0 * (u(2) - 0.5), 0.0, 100.0);
  // Precipitation: mostly zero, occasional events.
  const double rain_draw = u(3);
  obs.values[2] = rain_draw > 0.8 ? (rain_draw - 0.8) * 60.0 : 0.0;
  // Snow depth: only cold latitudes in cold season.
  const double cold = std::max(0.0, 0.02 * (std::fabs(lat) - 35.0) * (1.0 - season));
  obs.values[3] = cold * u(4);
  return obs;
}

ObservationList NamGenerator::generate(const BoundingBox& region,
                                       const TimeRange& time,
                                       std::uint64_t seed_mix) const {
  if (!region.valid()) throw std::invalid_argument("NamGenerator: bad region");
  if (!time.valid()) throw std::invalid_argument("NamGenerator: bad time range");
  const BoundingBox box = region.intersection(config_.coverage);
  ObservationList out;
  if (!box.valid() || time.begin >= time.end) return out;

  const GridRange lats = lat_range(box.lat_min, box.lat_max);
  const GridRange lngs = lng_range(box.lng_min, box.lng_max);
  if (lats.hi < lats.lo || lngs.hi < lngs.lo) return out;

  const int hour_step = 24 / config_.observations_per_day;
  const std::int64_t first_day = time.begin / 86400 - (time.begin % 86400 < 0 ? 1 : 0);
  const std::int64_t last_day = (time.end - 1) / 86400;
  out.reserve(count(region, time));
  for (std::int64_t day = first_day; day <= last_day; ++day) {
    for (int slot = 0; slot < config_.observations_per_day; ++slot) {
      const std::int64_t ts = day * 86400 + slot * hour_step * 3600;
      if (!time.contains(ts)) continue;
      for (std::int64_t i = lats.lo; i <= lats.hi; ++i)
        for (std::int64_t j = lngs.lo; j <= lngs.hi; ++j)
          out.push_back(at(i, j, day, slot, seed_mix));
    }
  }
  return out;
}

std::size_t NamGenerator::count(const BoundingBox& region,
                                const TimeRange& time) const {
  if (!region.valid() || !time.valid()) return 0;
  const BoundingBox box = region.intersection(config_.coverage);
  if (!box.valid() || time.begin >= time.end) return 0;
  const GridRange lats = lat_range(box.lat_min, box.lat_max);
  const GridRange lngs = lng_range(box.lng_min, box.lng_max);
  if (lats.hi < lats.lo || lngs.hi < lngs.lo) return 0;
  const auto points = static_cast<std::size_t>((lats.hi - lats.lo + 1) *
                                               (lngs.hi - lngs.lo + 1));
  const int hour_step = 24 / config_.observations_per_day;
  const std::int64_t first_day =
      time.begin / 86400 - (time.begin % 86400 < 0 ? 1 : 0);
  const std::int64_t last_day = (time.end - 1) / 86400;
  std::size_t slots = 0;
  for (std::int64_t day = first_day; day <= last_day; ++day)
    for (int slot = 0; slot < config_.observations_per_day; ++slot)
      if (time.contains(day * 86400 + slot * hour_step * 3600)) ++slots;
  return points * slots;
}

}  // namespace stash
