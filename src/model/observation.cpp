#include "model/observation.hpp"

namespace stash {

std::string attribute_name(NamAttribute a) {
  switch (a) {
    case NamAttribute::SurfaceTemperatureK: return "surface_temperature_k";
    case NamAttribute::RelativeHumidityPct: return "relative_humidity_pct";
    case NamAttribute::PrecipitationMm: return "precipitation_mm";
    case NamAttribute::SnowDepthM: return "snow_depth_m";
  }
  return "?";
}

}  // namespace stash
