// Procedural NAM-like observation generator.
//
// Substitution for the ~1.1 TB NOAA NAM dataset (§VIII-B): observations on
// a fixed lat/lon grid, several synoptic times per day, with physically
// plausible (latitude-, season- and hour-dependent) attribute values plus
// seeded noise.  Generation is *deterministic per (region, day)*: the same
// spatiotemporal request always yields byte-identical records, so the
// storage layer can generate block contents on demand instead of holding
// terabytes, and tests can assert exact cache-vs-disk equivalence.
#pragma once

#include <cstdint>

#include "geo/latlng.hpp"
#include "geo/temporal.hpp"
#include "model/observation.hpp"

namespace stash {

struct NamGeneratorConfig {
  /// Grid spacing in degrees (NAM is ~12 km ≈ 0.11°; the default is slightly coarser
  /// to keep laptop-scale benches in bounds while preserving density shape).
  double grid_spacing_deg = 0.12;
  /// Synoptic observation hours within each day (NAM: 00/06/12/18 UTC).
  int observations_per_day = 4;
  /// Spatial extent with data coverage (North America for NAM).
  BoundingBox coverage{15.0, 60.0, -135.0, -55.0};
  /// Base seed mixed into every record's noise.
  std::uint64_t seed = 0x4e414d2d32303135ULL;  // "NAM-2015"
};

class NamGenerator {
 public:
  explicit NamGenerator(NamGeneratorConfig config = {});

  [[nodiscard]] const NamGeneratorConfig& config() const noexcept { return config_; }

  /// All observations with position strictly inside `region` ∩ coverage and
  /// timestamp in `time` (half-open).  Deterministic: depends only on the
  /// generator config, the absolute grid/day, and `seed_mix` — NOT on the
  /// request shape, so overlapping requests see identical records.
  /// `seed_mix` perturbs the attribute values (not positions/timestamps);
  /// the storage layer uses it to model real-time updates re-writing a
  /// block's contents (version v => seed_mix v).
  [[nodiscard]] ObservationList generate(const BoundingBox& region,
                                         const TimeRange& time,
                                         std::uint64_t seed_mix = 0) const;

  /// Number of observations `generate` would return, without materialising.
  [[nodiscard]] std::size_t count(const BoundingBox& region,
                                  const TimeRange& time) const;

  /// The single observation for grid indices (i, j) at a synoptic hour of a
  /// day; exposed for tests that pin down determinism.
  [[nodiscard]] Observation at(std::int64_t lat_idx, std::int64_t lng_idx,
                               std::int64_t day, int synoptic_slot,
                               std::uint64_t seed_mix = 0) const;

 private:
  struct GridRange {
    std::int64_t lo = 0;
    std::int64_t hi = -1;  // inclusive
  };
  [[nodiscard]] GridRange lat_range(double lo, double hi) const noexcept;
  [[nodiscard]] GridRange lng_range(double lo, double hi) const noexcept;

  NamGeneratorConfig config_;
};

}  // namespace stash
