// Observation records and the dataset schema.
//
// The data collections STASH summarises "comprise multidimensional
// observations ... each observation has spatial coordinates (latitude and
// longitude) and an observational timestamp associated with it" (§I-B).
// The evaluation dataset is NOAA NAM forecast output with "features like
// surface temperature, relative humidity, snow and precipitation" (§VIII-B).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "geo/latlng.hpp"

namespace stash {

/// Attribute order of the NAM-like schema.
enum class NamAttribute : std::size_t {
  SurfaceTemperatureK = 0,
  RelativeHumidityPct = 1,
  PrecipitationMm = 2,
  SnowDepthM = 3,
};
inline constexpr std::size_t kNamAttributeCount = 4;

[[nodiscard]] std::string attribute_name(NamAttribute a);

/// One georeferenced, timestamped multidimensional observation.
struct Observation {
  LatLng position;
  std::int64_t timestamp = 0;  // unix seconds, UTC
  std::array<double, kNamAttributeCount> values{};

  [[nodiscard]] double value(NamAttribute a) const noexcept {
    return values[static_cast<std::size_t>(a)];
  }
};

/// Serialized record size on "disk"; drives the disk-I/O cost model.
/// NAM records carry dozens of forecast variables (~1.1 TB for one year,
/// §VIII-B); we aggregate 4 of them but a scan still reads the full
/// record: coordinates + timestamp + ~30 features at 8 bytes each.
inline constexpr std::size_t kObservationBytes = 256;

using ObservationList = std::vector<Observation>;

}  // namespace stash
