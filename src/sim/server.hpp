// A simulated multi-worker server with a bounded FIFO request queue.
//
// Models one cluster node's request-processing capacity: the paper's nodes
// are 8-core machines, so up to `workers` jobs are serviced concurrently
// and the rest wait in the pending queue.  The queue length is the hotspot
// signal (§VII-B.1: "a node deems itself to be hotspotted when the number
// of pending requests in its message queue crosses a configured threshold").
//
// The queue can be bounded (`queue_limit`) with a configurable admission
// policy, and every job may carry an absolute deadline.  Jobs that are shed
// by admission control, expire before dispatch, or are wiped by reset()
// complete *immediately* with an explicit Outcome instead of silently
// rotting in the queue — the caller always learns what happened.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "sim/event_loop.hpp"

namespace stash::sim {

/// How a job left the server.  Everything except kOk means the job's work
/// never ran (its Job callable was not invoked).
enum class Outcome : std::uint8_t {
  kOk,                // serviced normally
  kShed,              // rejected by admission control (bounded queue full)
  kDeadlineExceeded,  // deadline passed while the job waited in the queue
  kDropped,           // server reset (crash) while queued or in service
};

[[nodiscard]] const char* to_string(Outcome outcome) noexcept;

/// What a full bounded queue does with new work.
enum class AdmissionPolicy : std::uint8_t {
  kRejectNew,   // shed the incoming job (tail drop)
  kDropOldest,  // shed the head of the queue to admit the incoming job
};

class SimServer {
 public:
  /// A job runs its real work when dispatched and returns the virtual
  /// service duration it occupies a worker for.
  using Job = std::function<SimTime()>;
  /// Completions fire for *every* submitted job, carrying how it ended.
  /// Non-kOk completions are posted through the event loop (zero virtual
  /// delay) so callers never reenter themselves synchronously.
  using Completion = std::function<void(Outcome)>;

  struct Config {
    int workers = 1;
    /// Max jobs waiting for a worker (excludes in-service). 0 = unbounded.
    std::size_t queue_limit = 0;
    AdmissionPolicy admission = AdmissionPolicy::kRejectNew;
  };

  SimServer(EventLoop& loop, int workers);
  SimServer(EventLoop& loop, const Config& config);

  /// Enqueues a job; `on_complete` (optional) fires when it finishes or is
  /// shed/expired/dropped.  `deadline` is an absolute virtual time (0 =
  /// none): a job whose deadline has passed when a worker would pick it up
  /// completes with kDeadlineExceeded instead of being serviced.
  void submit(Job job, Completion on_complete = nullptr, SimTime deadline = 0);

  /// Crash semantics: every queued *and* in-service job completes with
  /// kDropped (posted through the loop, so the scatter layer learns of the
  /// crash immediately instead of waiting out a timeout).  The server
  /// itself stays usable — submitting after reset() models a cold restart.
  /// Returns jobs thrown away (queued + in service).
  std::size_t reset();

  /// Jobs waiting for a worker (excludes the ones being serviced).
  [[nodiscard]] std::size_t queue_length() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t queue_limit() const noexcept { return queue_limit_; }
  [[nodiscard]] AdmissionPolicy admission_policy() const noexcept { return admission_; }
  [[nodiscard]] int busy_workers() const noexcept { return busy_; }
  [[nodiscard]] int workers() const noexcept { return workers_; }
  [[nodiscard]] bool idle() const noexcept { return busy_ == 0 && queue_.empty(); }

  [[nodiscard]] std::uint64_t completed_jobs() const noexcept { return completed_; }
  /// Jobs rejected by admission control (lifetime, survives reset()).
  [[nodiscard]] std::uint64_t shed_jobs() const noexcept { return shed_; }
  /// Jobs whose deadline expired while queued (lifetime).
  [[nodiscard]] std::uint64_t expired_jobs() const noexcept { return expired_; }
  /// Jobs wiped by reset() (lifetime).
  [[nodiscard]] std::uint64_t dropped_jobs() const noexcept { return dropped_; }
  /// Cumulative virtual time jobs spent being serviced.
  [[nodiscard]] SimTime total_service_time() const noexcept { return service_time_; }
  /// Cumulative virtual time jobs spent queued before dispatch.
  [[nodiscard]] SimTime total_queue_wait() const noexcept { return queue_wait_; }
  /// High-water mark of queue_length() over the server's lifetime (survives
  /// reset()) — the hotspot detector's signal at its worst.
  [[nodiscard]] std::size_t peak_queue_length() const noexcept { return peak_queue_; }

 private:
  struct Pending {
    Job job;
    Completion on_complete;
    SimTime enqueued_at;
    SimTime deadline;  // absolute; 0 = none
  };

  /// True when `pending` carries a deadline that has already passed.
  [[nodiscard]] bool expired(const Pending& pending) const noexcept {
    return pending.deadline != 0 && loop_.now() > pending.deadline;
  }

  /// Completes a never-serviced job: counts it and posts its completion
  /// through the loop with zero virtual delay.
  void finish_unserviced(Completion on_complete, Outcome outcome);

  void dispatch(Pending pending);
  void try_dispatch();

  EventLoop& loop_;
  int workers_;
  std::size_t queue_limit_;
  AdmissionPolicy admission_;
  int busy_ = 0;
  std::uint64_t epoch_ = 0;  // bumped by reset(): orphans in-flight finishes
  std::deque<Pending> queue_;
  /// Completions of jobs currently being serviced, keyed by a per-dispatch
  /// serial so reset() can fire them with kDropped.
  std::unordered_map<std::uint64_t, Completion> in_service_;
  std::uint64_t next_serial_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t dropped_ = 0;
  SimTime service_time_ = 0;
  SimTime queue_wait_ = 0;
  std::size_t peak_queue_ = 0;
};

}  // namespace stash::sim
