// A simulated multi-worker server with a FIFO request queue.
//
// Models one cluster node's request-processing capacity: the paper's nodes
// are 8-core machines, so up to `workers` jobs are serviced concurrently
// and the rest wait in the pending queue.  The queue length is the hotspot
// signal (§VII-B.1: "a node deems itself to be hotspotted when the number
// of pending requests in its message queue crosses a configured threshold").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/event_loop.hpp"

namespace stash::sim {

class SimServer {
 public:
  /// A job runs its real work when dispatched and returns the virtual
  /// service duration it occupies a worker for.
  using Job = std::function<SimTime()>;
  using Completion = std::function<void()>;

  SimServer(EventLoop& loop, int workers);

  /// Enqueues a job; `on_complete` (optional) fires when it finishes.
  void submit(Job job, Completion on_complete = nullptr);

  /// Crash semantics: drops every queued job and silently discards the
  /// completions of jobs currently being serviced (their worker-finish
  /// events become no-ops).  The server itself stays usable — submitting
  /// after reset() models a cold restart.  Returns jobs thrown away
  /// (queued + in service).
  std::size_t reset();

  /// Jobs waiting for a worker (excludes the ones being serviced).
  [[nodiscard]] std::size_t queue_length() const noexcept { return queue_.size(); }
  [[nodiscard]] int busy_workers() const noexcept { return busy_; }
  [[nodiscard]] int workers() const noexcept { return workers_; }
  [[nodiscard]] bool idle() const noexcept { return busy_ == 0 && queue_.empty(); }

  [[nodiscard]] std::uint64_t completed_jobs() const noexcept { return completed_; }
  /// Cumulative virtual time jobs spent being serviced.
  [[nodiscard]] SimTime total_service_time() const noexcept { return service_time_; }
  /// Cumulative virtual time jobs spent queued before dispatch.
  [[nodiscard]] SimTime total_queue_wait() const noexcept { return queue_wait_; }
  /// High-water mark of queue_length() over the server's lifetime (survives
  /// reset()) — the hotspot detector's signal at its worst.
  [[nodiscard]] std::size_t peak_queue_length() const noexcept { return peak_queue_; }

 private:
  struct Pending {
    Job job;
    Completion on_complete;
    SimTime enqueued_at;
  };

  void dispatch(Pending pending);
  void try_dispatch();

  EventLoop& loop_;
  int workers_;
  int busy_ = 0;
  std::uint64_t epoch_ = 0;  // bumped by reset(): orphans in-flight completions
  std::deque<Pending> queue_;
  std::uint64_t completed_ = 0;
  SimTime service_time_ = 0;
  SimTime queue_wait_ = 0;
  std::size_t peak_queue_ = 0;
};

}  // namespace stash::sim
