// Discrete-event loop driving the cluster simulation.
//
// Deterministic: events at equal timestamps run in scheduling order
// (a monotonically increasing sequence number breaks ties), so a given
// seed always reproduces the same interleaving — a property the tests rely
// on and that a 120-node physical cluster cannot offer.
//
// Events come in two flavours:
//   * foreground — real work (queries, scatter/gather, scripted faults).
//     `run()` executes until no foreground work remains.
//   * background — housekeeping that reschedules itself forever (gossip
//     probes, suspicion timers).  Background events interleave with
//     foreground work in timestamp order, but never keep `run()` alive on
//     their own: once the last foreground event fires, `run()` returns and
//     leaves pending background events queued.  `run_until`/`run_for`
//     execute background events up to the deadline even with an otherwise
//     idle loop, so tests can advance gossip by simply advancing time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/clock.hpp"

namespace stash::sim {

class EventLoop {
 public:
  using Action = std::function<void()>;
  /// Handle for a cancellable event (timers).  0 is never a valid id.
  using EventId = std::uint64_t;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` to run `delay` microseconds from now (>= 0).
  void schedule(SimTime delay, Action action);

  /// Schedules `action` at the current virtual time, after events already
  /// queued for this instant (seq-number tie-break).  Use for "complete
  /// immediately, but asynchronously" notifications.
  void post(Action action) { schedule(0, std::move(action)); }

  /// Schedules at an absolute virtual time (>= now()).
  void schedule_at(SimTime when, Action action);

  /// Schedules a cancellable event (e.g. a timeout) and returns its id.
  /// A cancelled event is skipped silently *without advancing the clock*,
  /// so an armed-but-unused timer never stretches the run.
  EventId schedule_cancellable(SimTime delay, Action action);

  /// Schedules a background event: it runs in timestamp order like any
  /// other, but does not count towards `run()`'s termination condition.
  void schedule_background(SimTime delay, Action action);

  /// Cancellable background event (periodic-probe timeouts and the like).
  EventId schedule_background_cancellable(SimTime delay, Action action);

  /// Cancels a pending cancellable event.  No-op for unknown/fired ids.
  void cancel(EventId id);

  /// Runs until no *foreground* events remain (background events queued
  /// past that point stay queued).  Returns the final virtual time.
  SimTime run();

  /// Runs until foreground work empties or the clock passes `deadline`.
  /// Background events due before the deadline execute even when no
  /// foreground event remains.
  SimTime run_until(SimTime deadline);

  /// Runs for at most `duration` virtual time from now (deadline guard for
  /// runs that must terminate even if events keep rescheduling).
  SimTime run_for(SimTime duration) { return run_until(now_ + duration); }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Queued foreground events not yet cancelled (termination condition of
  /// `run()`: it returns once this reaches zero).
  [[nodiscard]] std::size_t foreground_pending() const noexcept {
    return foreground_live_;
  }

  /// Total number of events executed (diagnostics / determinism checks).
  /// Cancelled events are skipped, not executed.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    EventId id;  // 0: not cancellable
    bool background;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };
  struct CancellableState {
    bool background;
    bool cancelled;
  };

  void push(SimTime when, EventId id, bool background, Action action);

  /// Pops the next event; returns false if it was cancelled (skipped).
  bool pop_next(Event& out);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  /// One entry per *queued* cancellable event; erased when popped, so
  /// `cancel` on a fired id is a clean no-op and nothing accumulates.
  std::unordered_map<EventId, CancellableState> cancellable_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t foreground_live_ = 0;
};

}  // namespace stash::sim
