// Discrete-event loop driving the cluster simulation.
//
// Deterministic: events at equal timestamps run in scheduling order
// (a monotonically increasing sequence number breaks ties), so a given
// seed always reproduces the same interleaving — a property the tests rely
// on and that a 120-node physical cluster cannot offer.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/clock.hpp"

namespace stash::sim {

class EventLoop {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` to run `delay` microseconds from now (>= 0).
  void schedule(SimTime delay, Action action);

  /// Schedules at an absolute virtual time (>= now()).
  void schedule_at(SimTime when, Action action);

  /// Runs until no events remain. Returns the final virtual time.
  SimTime run();

  /// Runs until the queue empties or the clock passes `deadline`.
  SimTime run_until(SimTime deadline);

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Total number of events executed (diagnostics / determinism checks).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace stash::sim
