// Discrete-event loop driving the cluster simulation.
//
// Deterministic: events at equal timestamps run in scheduling order
// (a monotonically increasing sequence number breaks ties), so a given
// seed always reproduces the same interleaving — a property the tests rely
// on and that a 120-node physical cluster cannot offer.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/clock.hpp"

namespace stash::sim {

class EventLoop {
 public:
  using Action = std::function<void()>;
  /// Handle for a cancellable event (timers).  0 is never a valid id.
  using EventId = std::uint64_t;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` to run `delay` microseconds from now (>= 0).
  void schedule(SimTime delay, Action action);

  /// Schedules `action` at the current virtual time, after events already
  /// queued for this instant (seq-number tie-break).  Use for "complete
  /// immediately, but asynchronously" notifications.
  void post(Action action) { schedule(0, std::move(action)); }

  /// Schedules at an absolute virtual time (>= now()).
  void schedule_at(SimTime when, Action action);

  /// Schedules a cancellable event (e.g. a timeout) and returns its id.
  /// A cancelled event is skipped silently *without advancing the clock*,
  /// so an armed-but-unused timer never stretches the run.
  EventId schedule_cancellable(SimTime delay, Action action);

  /// Cancels a pending cancellable event.  No-op for unknown/fired ids.
  void cancel(EventId id);

  /// Runs until no events remain. Returns the final virtual time.
  SimTime run();

  /// Runs until the queue empties or the clock passes `deadline`.
  SimTime run_until(SimTime deadline);

  /// Runs for at most `duration` virtual time from now (deadline guard for
  /// runs that must terminate even if events keep rescheduling).
  SimTime run_for(SimTime duration) { return run_until(now_ + duration); }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Total number of events executed (diagnostics / determinism checks).
  /// Cancelled events are skipped, not executed.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    EventId id;  // 0: not cancellable
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  /// Pops the next event; returns false if it was cancelled (skipped).
  bool pop_next(Event& out);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace stash::sim
