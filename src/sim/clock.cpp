#include "sim/clock.hpp"

#include <sstream>

namespace stash::sim {

std::string format_duration(SimTime t) {
  std::ostringstream out;
  if (t < kMillisecond) {
    out << t << "us";
  } else if (t < kSecond) {
    out << to_millis(t) << "ms";
  } else {
    out << to_seconds(t) << "s";
  }
  return out.str();
}

}  // namespace stash::sim
