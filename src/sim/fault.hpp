// Deterministic fault injection for the simulated cluster.
//
// The paper treats STASH as *volatile* middleware over a durable Galileo
// store (§IV, §VII): cached Cliques, guest replicas, and routing entries
// may vanish at any moment, and the system must keep answering from
// storage.  A FaultPlan scripts that adversity against the discrete-event
// loop: node crashes at virtual time T (wiping volatile state; storage
// survives), cold restarts at T', seeded per-link message loss, inflated
// link latency (slow-node / gray-failure mode), and network partitions
// that sever whole groups from each other for a scripted interval.  All
// randomness flows through one Rng, so the same seed + the same plan
// reproduce a bit-identical run — crash tests are as repeatable as the
// happy path.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "sim/event_loop.hpp"

namespace stash::sim {

/// Wildcard endpoint for LinkRule matching.
inline constexpr std::uint32_t kAnyNode = 0xffffffffu;
/// Pseudo-node id for the query front-end (scatter/gather coordinator).
inline constexpr std::uint32_t kFrontendNode = 0xfffffffeu;
/// Sentinel for "never restarts" in CrashEvent.
inline constexpr SimTime kNever = -1;

/// One scripted crash: the node dies at `at` (volatile state is wiped by
/// the owner of the injector) and optionally restarts cold at `restart_at`.
struct CrashEvent {
  std::uint32_t node = 0;
  SimTime at = 0;
  SimTime restart_at = kNever;
};

/// Degrades messages on matching links.  `from`/`to` may be kAnyNode; the
/// first matching rule wins.  The injector stable-sorts rules most-specific
/// first at construction (both endpoints named, then one wildcard, then
/// full wildcards), so a plan may list rules in any order and a specific
/// link override always beats a blanket rule.
/// A message is dropped with `drop_probability`; surviving messages gain
/// `extra_latency` (gray failure: slow, not dead).  Surviving messages are
/// additionally bit-flipped with `corrupt_probability` or torn short with
/// `truncate_probability` — payload corruption the receiver must detect by
/// checksum, not by luck (both are rolled by should_tamper()).
struct LinkRule {
  std::uint32_t from = kAnyNode;
  std::uint32_t to = kAnyNode;
  double drop_probability = 0.0;
  SimTime extra_latency = 0;
  double corrupt_probability = 0.0;   // flip one random payload bit
  double truncate_probability = 0.0;  // tear the payload short
};

/// Scripted storage bit-rot: at `at`, the named block's on-disk bytes stop
/// matching its checksum.  The owner's handler forwards this to the
/// GalileoStore (rot_block); scans then detect-and-quarantine it and the
/// scrubber repairs it.
struct BitRotEvent {
  std::string partition;  // geohash prefix (block partition key)
  std::int64_t day = 0;   // epoch day
  SimTime at = 0;
};

/// How one in-flight message was tampered with (rolled once per message by
/// should_tamper()).  `salt` deterministically picks which bit flips or
/// where the tear lands, so a seeded run corrupts the same byte every time.
struct Tamper {
  enum class Kind : std::uint8_t { kNone, kBitFlip, kTruncate };
  Kind kind = Kind::kNone;
  std::uint64_t salt = 0;

  [[nodiscard]] bool none() const noexcept { return kind == Kind::kNone; }
};

/// Applies a Tamper to encoded payload bytes: kBitFlip flips the salt-picked
/// bit; kTruncate shortens the buffer to a salt-picked prefix (possibly
/// empty).  No-op for kNone or an empty buffer.
void apply_tamper(const Tamper& tamper, std::vector<std::uint8_t>& bytes);

/// A scripted network partition: from `at` until `heal_at`, messages
/// between nodes in *different* groups are dropped deterministically (no
/// dice roll — a severed link delivers nothing).  Nodes absent from every
/// group stay connected to everyone.  `kFrontendNode` may be listed to put
/// the scatter/gather coordinator on one side of the split.  Compiled onto
/// the same drop path as LinkRule, ahead of it: severed beats lossy.
struct PartitionEvent {
  std::vector<std::vector<std::uint32_t>> groups;
  SimTime at = 0;
  SimTime heal_at = kNever;  // kNever: never heals
};

/// A scripted elastic scale-out: at `at`, standby slot `node` joins the
/// cluster (gossip announce with a fresh incarnation; the frontend admits
/// it into the ring once membership stabilizes and rebalances partitions
/// onto it).  Not a fault per se, but scripted here so joins interleave
/// deterministically with crashes and partitions — the whole point of the
/// elastic chaos suites.
struct JoinEvent {
  std::uint32_t node = 0;
  SimTime at = 0;
};

/// A scripted elastic scale-in: at `at`, member `node` begins a graceful
/// decommission — it keeps serving while successors pull its partitions,
/// then leaves via an explicit gossip rumor.
struct DecommissionEvent {
  std::uint32_t node = 0;
  SimTime at = 0;
};

/// A complete scripted failure scenario.  Empty plan == healthy cluster.
struct FaultPlan {
  std::vector<CrashEvent> crashes;
  std::vector<LinkRule> links;
  std::vector<PartitionEvent> partitions;
  std::vector<BitRotEvent> bitrot;
  std::vector<JoinEvent> joins;
  std::vector<DecommissionEvent> decommissions;
  std::uint64_t seed = 0x4641554c54ULL;  // "FAULT"

  [[nodiscard]] bool empty() const noexcept {
    return crashes.empty() && links.empty() && partitions.empty() &&
           bitrot.empty() && joins.empty() && decommissions.empty();
  }
};

/// Counters the injector accumulates (observability for tests/benches).
struct FaultStats {
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t partitions_observed = 0;  // partition activations
  std::uint64_t partitions_healed = 0;
  std::uint64_t partition_drops = 0;  // messages severed by a partition
  std::uint64_t messages_corrupted = 0;  // bit-flip tampers rolled
  std::uint64_t messages_truncated = 0;  // truncation tampers rolled
  std::uint64_t bitrot_injected = 0;     // BitRotEvents fired
  std::uint64_t joins_fired = 0;           // JoinEvents fired
  std::uint64_t decommissions_fired = 0;   // DecommissionEvents fired
  /// Number of should_drop() calls.  The cluster sends every message
  /// through exactly one should_drop() roll; STASH_AUDIT builds assert
  /// this equals the cluster's send count (a double or missed roll would
  /// silently skew every seeded scenario downstream of it).
  std::uint64_t drop_checks = 0;
};

/// Executes a FaultPlan against an EventLoop and answers liveness /
/// link-quality queries for the system under test.
///
/// The owner installs crash/restart/heal handlers (to wipe or rebuild
/// volatile state, and to trigger anti-entropy after a partition heals)
/// and calls `arm()` once to schedule the plan's events.  Message sends
/// consult `should_drop()` (consumes randomness — call exactly once per
/// message) and `extra_latency()`; deliveries consult `alive()`.
class FaultInjector {
 public:
  using NodeHandler = std::function<void(std::uint32_t node)>;
  using PartitionHandler = std::function<void(const PartitionEvent& event)>;
  using BitRotHandler = std::function<void(const BitRotEvent& event)>;

  FaultInjector(FaultPlan plan, std::uint32_t num_nodes);

  /// Handler invoked when a node crashes / restarts (install before arm()).
  void set_crash_handler(NodeHandler handler) { on_crash_ = std::move(handler); }
  void set_restart_handler(NodeHandler handler) { on_restart_ = std::move(handler); }
  /// Handlers invoked when a scripted partition activates / heals.
  void set_partition_handler(PartitionHandler handler) {
    on_partition_ = std::move(handler);
  }
  void set_heal_handler(PartitionHandler handler) {
    on_heal_ = std::move(handler);
  }
  /// Handler invoked when a scripted bit-rot event fires (the owner routes
  /// it to the storage layer).
  void set_bitrot_handler(BitRotHandler handler) {
    on_bitrot_ = std::move(handler);
  }
  /// Handlers invoked when a scripted join / decommission fires (the owner
  /// routes them to the cluster's elastic membership machinery).
  void set_join_handler(NodeHandler handler) { on_join_ = std::move(handler); }
  void set_decommission_handler(NodeHandler handler) {
    on_decommission_ = std::move(handler);
  }

  /// Schedules every crash/restart/partition in the plan on `loop`.  Call once.
  void arm(EventLoop& loop);

  /// Immediate (unscripted) crash/restart — for interactive drivers and
  /// tests that steer faults directly.  No-ops if already in that state.
  void force_crash(std::uint32_t node);
  void force_restart(std::uint32_t node);

  /// Is the node up right now?  The frontend pseudo-node is always alive.
  [[nodiscard]] bool alive(std::uint32_t node) const;

  /// Are `a` and `b` currently on opposite sides of an active partition?
  [[nodiscard]] bool partitioned(std::uint32_t a, std::uint32_t b) const;

  /// Rolls the dice for one message on the from→to link.  Deterministic
  /// given the (seeded) call sequence, which the event loop guarantees.
  /// Messages severed by an active partition are dropped without
  /// consuming randomness, so healed and never-partitioned runs draw the
  /// same dice for the messages they share.
  [[nodiscard]] bool should_drop(std::uint32_t from, std::uint32_t to);

  /// Rolls the tamper dice for one *surviving* message on the from→to
  /// link: call once per message that passed should_drop().  Consumes
  /// randomness only when the matching rule actually tampers
  /// (corrupt/truncate probability > 0), so legacy plans draw bit-identical
  /// dice streams.  Bit-flip is rolled before truncation; at most one
  /// tamper applies per message.
  [[nodiscard]] Tamper should_tamper(std::uint32_t from, std::uint32_t to);

  /// Additional one-way latency on the from→to link (gray failure).
  [[nodiscard]] SimTime extra_latency(std::uint32_t from, std::uint32_t to);

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  /// Compiled form of one PartitionEvent: node → group index.
  struct CompiledPartition {
    std::unordered_map<std::uint32_t, int> group_of;
    bool active = false;
  };

  [[nodiscard]] const LinkRule* match(std::uint32_t from, std::uint32_t to) const;

  FaultPlan plan_;
  std::vector<CompiledPartition> compiled_partitions_;
  std::vector<char> up_;  // per-node liveness (char: vector<bool> is a trap)
  Rng rng_;
  FaultStats stats_;
  NodeHandler on_crash_;
  NodeHandler on_restart_;
  PartitionHandler on_partition_;
  PartitionHandler on_heal_;
  BitRotHandler on_bitrot_;
  NodeHandler on_join_;
  NodeHandler on_decommission_;
  bool armed_ = false;
};

}  // namespace stash::sim
