#include "sim/event_loop.hpp"

#include <stdexcept>
#include <utility>

namespace stash::sim {

void EventLoop::schedule(SimTime delay, Action action) {
  if (delay < 0) throw std::invalid_argument("EventLoop::schedule: negative delay");
  schedule_at(now_ + delay, std::move(action));
}

void EventLoop::schedule_at(SimTime when, Action action) {
  if (when < now_)
    throw std::invalid_argument("EventLoop::schedule_at: time in the past");
  queue_.push(Event{when, next_seq_++, std::move(action)});
}

SimTime EventLoop::run() {
  while (!queue_.empty()) {
    // Move out of the queue before popping: the action may schedule more.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    ++executed_;
    ev.action();
  }
  return now_;
}

SimTime EventLoop::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    ++executed_;
    ev.action();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace stash::sim
