#include "sim/event_loop.hpp"

#include <stdexcept>
#include <utility>

namespace stash::sim {

void EventLoop::schedule(SimTime delay, Action action) {
  if (delay < 0) throw std::invalid_argument("EventLoop::schedule: negative delay");
  schedule_at(now_ + delay, std::move(action));
}

void EventLoop::schedule_at(SimTime when, Action action) {
  if (when < now_)
    throw std::invalid_argument("EventLoop::schedule_at: time in the past");
  queue_.push(Event{when, next_seq_++, 0, std::move(action)});
}

EventLoop::EventId EventLoop::schedule_cancellable(SimTime delay, Action action) {
  if (delay < 0)
    throw std::invalid_argument("EventLoop::schedule_cancellable: negative delay");
  const EventId id = next_id_++;
  queue_.push(Event{now_ + delay, next_seq_++, id, std::move(action)});
  return id;
}

void EventLoop::cancel(EventId id) {
  if (id != 0) cancelled_.insert(id);
}

bool EventLoop::pop_next(Event& out) {
  // Move out of the queue before popping: the action may schedule more.
  out = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  if (out.id != 0) {
    const auto it = cancelled_.find(out.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      return false;  // skipped: the clock does not advance to a dead timer
    }
  }
  return true;
}

SimTime EventLoop::run() {
  while (!queue_.empty()) {
    Event ev;
    if (!pop_next(ev)) continue;
    now_ = ev.when;
    ++executed_;
    ev.action();
  }
  cancelled_.clear();  // ids of timers that outlived every live event
  return now_;
}

SimTime EventLoop::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev;
    if (!pop_next(ev)) continue;
    now_ = ev.when;
    ++executed_;
    ev.action();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace stash::sim
