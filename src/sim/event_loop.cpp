#include "sim/event_loop.hpp"

#include <stdexcept>
#include <utility>

namespace stash::sim {

void EventLoop::push(SimTime when, EventId id, bool background, Action action) {
  if (when < now_)
    throw std::invalid_argument("EventLoop: scheduling in the past");
  queue_.push(Event{when, next_seq_++, id, background, std::move(action)});
  if (!background) ++foreground_live_;
}

void EventLoop::schedule(SimTime delay, Action action) {
  if (delay < 0) throw std::invalid_argument("EventLoop::schedule: negative delay");
  push(now_ + delay, 0, /*background=*/false, std::move(action));
}

void EventLoop::schedule_at(SimTime when, Action action) {
  push(when, 0, /*background=*/false, std::move(action));
}

EventLoop::EventId EventLoop::schedule_cancellable(SimTime delay, Action action) {
  if (delay < 0)
    throw std::invalid_argument("EventLoop::schedule_cancellable: negative delay");
  const EventId id = next_id_++;
  cancellable_.emplace(id, CancellableState{/*background=*/false,
                                            /*cancelled=*/false});
  push(now_ + delay, id, /*background=*/false, std::move(action));
  return id;
}

void EventLoop::schedule_background(SimTime delay, Action action) {
  if (delay < 0)
    throw std::invalid_argument("EventLoop::schedule_background: negative delay");
  push(now_ + delay, 0, /*background=*/true, std::move(action));
}

EventLoop::EventId EventLoop::schedule_background_cancellable(SimTime delay,
                                                              Action action) {
  if (delay < 0)
    throw std::invalid_argument(
        "EventLoop::schedule_background_cancellable: negative delay");
  const EventId id = next_id_++;
  cancellable_.emplace(id, CancellableState{/*background=*/true,
                                            /*cancelled=*/false});
  push(now_ + delay, id, /*background=*/true, std::move(action));
  return id;
}

void EventLoop::cancel(EventId id) {
  if (id == 0) return;
  const auto it = cancellable_.find(id);
  if (it == cancellable_.end() || it->second.cancelled) return;
  it->second.cancelled = true;
  // A cancelled foreground timer no longer holds `run()` open; without this
  // a far-future dead timer would force the loop to grind through every
  // background event scheduled before it.
  if (!it->second.background) --foreground_live_;
}

bool EventLoop::pop_next(Event& out) {
  // Move out of the queue before popping: the action may schedule more.
  out = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  if (out.id != 0) {
    const auto it = cancellable_.find(out.id);
    const bool cancelled = it->second.cancelled;
    cancellable_.erase(it);
    if (cancelled) return false;  // skipped: the clock does not advance
  }
  if (!out.background) --foreground_live_;
  return true;
}

SimTime EventLoop::run() {
  while (foreground_live_ > 0) {
    Event ev;
    if (!pop_next(ev)) continue;
    now_ = ev.when;
    ++executed_;
    ev.action();
  }
  return now_;
}

SimTime EventLoop::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev;
    if (!pop_next(ev)) continue;
    now_ = ev.when;
    ++executed_;
    ev.action();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace stash::sim
