// Calibrated cost model for the simulated cluster.
//
// Defaults approximate the paper's 2013-era testbed nodes (HP Z420, 8-core
// Xeon, spinning 1 TB disk) on gigabit Ethernet.  Only *relative* outcomes
// matter for the reproduction (who wins, by what factor), and those are
// driven by which path a query takes — disk scan vs in-memory Cells —
// rather than by the absolute constants.
#pragma once

#include <cstddef>

#include "sim/clock.hpp"

namespace stash::sim {

struct CostModel {
  // --- disk ---
  SimTime disk_seek = 4 * kMillisecond;       // HDD seek + rotational latency
  double disk_bytes_per_us = 150.0;           // ~150 MB/s sequential read

  // --- network ---
  SimTime net_message_latency = 250;          // per-message overhead (0.25 ms)
  double net_bytes_per_us = 125.0;            // ~1 Gb/s

  // --- CPU ---
  SimTime scan_ns_per_record = 180;           // filter + bin + aggregate
  SimTime cache_probe_ns = 350;               // hash probe per chunk/Cell
  SimTime cell_insert_ns = 900;               // graph insert + PLM update
  SimTime freshness_update_ns = 120;          // per touched Cell
  SimTime merge_ns_per_cell = 60;             // response merge per Cell

  [[nodiscard]] SimTime disk_read(std::size_t bytes) const noexcept {
    return disk_seek +
           static_cast<SimTime>(static_cast<double>(bytes) / disk_bytes_per_us);
  }

  /// Sequential read without an extra seek (continuation of a scan).
  [[nodiscard]] SimTime disk_stream(std::size_t bytes) const noexcept {
    return static_cast<SimTime>(static_cast<double>(bytes) / disk_bytes_per_us);
  }

  [[nodiscard]] SimTime net_transfer(std::size_t bytes) const noexcept {
    return net_message_latency +
           static_cast<SimTime>(static_cast<double>(bytes) / net_bytes_per_us);
  }

  [[nodiscard]] SimTime scan(std::size_t records) const noexcept {
    return ns(records, scan_ns_per_record);
  }
  [[nodiscard]] SimTime cache_probes(std::size_t probes) const noexcept {
    return ns(probes, cache_probe_ns);
  }
  [[nodiscard]] SimTime cell_inserts(std::size_t cells) const noexcept {
    return ns(cells, cell_insert_ns);
  }
  [[nodiscard]] SimTime freshness_updates(std::size_t cells) const noexcept {
    return ns(cells, freshness_update_ns);
  }
  [[nodiscard]] SimTime merge(std::size_t cells) const noexcept {
    return ns(cells, merge_ns_per_cell);
  }

 private:
  [[nodiscard]] static SimTime ns(std::size_t count, SimTime per_ns) noexcept {
    return static_cast<SimTime>(count) * per_ns / 1000;
  }
};

}  // namespace stash::sim
