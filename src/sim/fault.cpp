#include "sim/fault.hpp"

#include <algorithm>
#include <stdexcept>

namespace stash::sim {

namespace {

/// Lower rank == more specific; the stable sort keeps plan order within a
/// rank, so two equally specific overlapping rules still resolve by
/// listing order.
int rule_rank(const LinkRule& rule) noexcept {
  return (rule.from == kAnyNode ? 1 : 0) + (rule.to == kAnyNode ? 1 : 0);
}

}  // namespace

void apply_tamper(const Tamper& tamper, std::vector<std::uint8_t>& bytes) {
  if (tamper.none() || bytes.empty()) return;
  switch (tamper.kind) {
    case Tamper::Kind::kBitFlip: {
      const std::uint64_t bit = tamper.salt % (bytes.size() * 8);
      bytes[static_cast<std::size_t>(bit / 8)] ^=
          static_cast<std::uint8_t>(1u << (bit % 8));
      break;
    }
    case Tamper::Kind::kTruncate:
      // Tear to a strict prefix: salt picks [0, size-1] surviving bytes.
      bytes.resize(static_cast<std::size_t>(tamper.salt % bytes.size()));
      break;
    case Tamper::Kind::kNone:
      break;
  }
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint32_t num_nodes)
    : plan_(std::move(plan)), up_(num_nodes, 1), rng_(plan_.seed) {
  for (const auto& crash : plan_.crashes) {
    if (crash.node >= num_nodes)
      throw std::invalid_argument("FaultPlan: crash targets unknown node");
    if (crash.at < 0)
      throw std::invalid_argument("FaultPlan: crash time must be >= 0");
    if (crash.restart_at != kNever && crash.restart_at <= crash.at)
      throw std::invalid_argument("FaultPlan: restart must follow the crash");
  }
  for (const auto& rule : plan_.links) {
    if (rule.drop_probability < 0.0 || rule.drop_probability > 1.0)
      throw std::invalid_argument("FaultPlan: drop probability outside [0,1]");
    if (rule.extra_latency < 0)
      throw std::invalid_argument("FaultPlan: negative extra latency");
    if (rule.corrupt_probability < 0.0 || rule.corrupt_probability > 1.0)
      throw std::invalid_argument(
          "FaultPlan: corrupt probability outside [0,1]");
    if (rule.truncate_probability < 0.0 || rule.truncate_probability > 1.0)
      throw std::invalid_argument(
          "FaultPlan: truncate probability outside [0,1]");
  }
  for (const auto& event : plan_.bitrot) {
    if (event.partition.empty())
      throw std::invalid_argument("FaultPlan: bit-rot needs a partition key");
    if (event.at < 0)
      throw std::invalid_argument("FaultPlan: bit-rot time must be >= 0");
  }
  for (const auto& event : plan_.joins) {
    if (event.node >= num_nodes)
      throw std::invalid_argument("FaultPlan: join targets unknown slot");
    if (event.at < 0)
      throw std::invalid_argument("FaultPlan: join time must be >= 0");
  }
  for (const auto& event : plan_.decommissions) {
    if (event.node >= num_nodes)
      throw std::invalid_argument("FaultPlan: decommission targets unknown node");
    if (event.at < 0)
      throw std::invalid_argument("FaultPlan: decommission time must be >= 0");
  }
  std::stable_sort(plan_.links.begin(), plan_.links.end(),
                   [](const LinkRule& a, const LinkRule& b) {
                     return rule_rank(a) < rule_rank(b);
                   });
  compiled_partitions_.reserve(plan_.partitions.size());
  for (const auto& event : plan_.partitions) {
    if (event.groups.size() < 2)
      throw std::invalid_argument("FaultPlan: partition needs >= 2 groups");
    if (event.at < 0)
      throw std::invalid_argument("FaultPlan: partition time must be >= 0");
    if (event.heal_at != kNever && event.heal_at <= event.at)
      throw std::invalid_argument("FaultPlan: heal must follow the partition");
    CompiledPartition compiled;
    for (std::size_t g = 0; g < event.groups.size(); ++g) {
      if (event.groups[g].empty())
        throw std::invalid_argument("FaultPlan: empty partition group");
      for (const std::uint32_t node : event.groups[g]) {
        if (node >= num_nodes && node != kFrontendNode)
          throw std::invalid_argument("FaultPlan: partition names unknown node");
        if (!compiled.group_of.emplace(node, static_cast<int>(g)).second)
          throw std::invalid_argument(
              "FaultPlan: node appears in two groups of one partition");
      }
    }
    compiled_partitions_.push_back(std::move(compiled));
  }
}

void FaultInjector::arm(EventLoop& loop) {
  if (armed_) throw std::logic_error("FaultInjector: arm() called twice");
  armed_ = true;
  for (const auto& crash : plan_.crashes) {
    loop.schedule_at(crash.at,
                     [this, node = crash.node] { force_crash(node); });
    if (crash.restart_at != kNever)
      loop.schedule_at(crash.restart_at,
                       [this, node = crash.node] { force_restart(node); });
  }
  for (std::size_t i = 0; i < plan_.partitions.size(); ++i) {
    const PartitionEvent& event = plan_.partitions[i];
    loop.schedule_at(event.at, [this, i] {
      compiled_partitions_[i].active = true;
      ++stats_.partitions_observed;
      if (on_partition_) on_partition_(plan_.partitions[i]);
    });
    if (event.heal_at != kNever)
      loop.schedule_at(event.heal_at, [this, i] {
        compiled_partitions_[i].active = false;
        ++stats_.partitions_healed;
        if (on_heal_) on_heal_(plan_.partitions[i]);
      });
  }
  for (std::size_t i = 0; i < plan_.bitrot.size(); ++i) {
    loop.schedule_at(plan_.bitrot[i].at, [this, i] {
      ++stats_.bitrot_injected;
      if (on_bitrot_) on_bitrot_(plan_.bitrot[i]);
    });
  }
  for (const auto& event : plan_.joins) {
    loop.schedule_at(event.at, [this, node = event.node] {
      ++stats_.joins_fired;
      if (on_join_) on_join_(node);
    });
  }
  for (const auto& event : plan_.decommissions) {
    loop.schedule_at(event.at, [this, node = event.node] {
      ++stats_.decommissions_fired;
      if (on_decommission_) on_decommission_(node);
    });
  }
}

void FaultInjector::force_crash(std::uint32_t node) {
  if (node >= up_.size())
    throw std::invalid_argument("FaultInjector::force_crash: unknown node");
  if (!up_[node]) return;
  up_[node] = 0;
  ++stats_.crashes;
  if (on_crash_) on_crash_(node);
}

void FaultInjector::force_restart(std::uint32_t node) {
  if (node >= up_.size())
    throw std::invalid_argument("FaultInjector::force_restart: unknown node");
  if (up_[node]) return;
  up_[node] = 1;
  ++stats_.restarts;
  if (on_restart_) on_restart_(node);
}

bool FaultInjector::alive(std::uint32_t node) const {
  if (node >= up_.size()) return true;  // frontend / external endpoints
  return up_[node] != 0;
}

bool FaultInjector::partitioned(std::uint32_t a, std::uint32_t b) const {
  for (const auto& compiled : compiled_partitions_) {
    if (!compiled.active) continue;
    const auto ga = compiled.group_of.find(a);
    if (ga == compiled.group_of.end()) continue;
    const auto gb = compiled.group_of.find(b);
    if (gb == compiled.group_of.end()) continue;
    if (ga->second != gb->second) return true;
  }
  return false;
}

const LinkRule* FaultInjector::match(std::uint32_t from,
                                     std::uint32_t to) const {
  for (const auto& rule : plan_.links) {
    const bool from_ok = rule.from == kAnyNode || rule.from == from;
    const bool to_ok = rule.to == kAnyNode || rule.to == to;
    if (from_ok && to_ok) return &rule;
  }
  return nullptr;
}

bool FaultInjector::should_drop(std::uint32_t from, std::uint32_t to) {
  ++stats_.drop_checks;
  if (partitioned(from, to)) {
    ++stats_.messages_dropped;
    ++stats_.partition_drops;
    return true;  // severed: no dice roll, see header
  }
  const LinkRule* rule = match(from, to);
  if (rule == nullptr || rule->drop_probability <= 0.0) return false;
  if (rng_.bernoulli(rule->drop_probability)) {
    ++stats_.messages_dropped;
    return true;
  }
  return false;
}

Tamper FaultInjector::should_tamper(std::uint32_t from, std::uint32_t to) {
  const LinkRule* rule = match(from, to);
  // Draw no dice unless the rule actually tampers: legacy plans (and rules
  // that only drop/delay) must leave the seeded stream bit-identical.
  if (rule == nullptr ||
      (rule->corrupt_probability <= 0.0 && rule->truncate_probability <= 0.0))
    return {};
  Tamper tamper;
  if (rule->corrupt_probability > 0.0 &&
      rng_.bernoulli(rule->corrupt_probability)) {
    tamper.kind = Tamper::Kind::kBitFlip;
    tamper.salt = rng_.next_u64();
    ++stats_.messages_corrupted;
    return tamper;
  }
  if (rule->truncate_probability > 0.0 &&
      rng_.bernoulli(rule->truncate_probability)) {
    tamper.kind = Tamper::Kind::kTruncate;
    tamper.salt = rng_.next_u64();
    ++stats_.messages_truncated;
  }
  return tamper;
}

SimTime FaultInjector::extra_latency(std::uint32_t from, std::uint32_t to) {
  const LinkRule* rule = match(from, to);
  if (rule == nullptr || rule->extra_latency <= 0) return 0;
  ++stats_.messages_delayed;
  return rule->extra_latency;
}

}  // namespace stash::sim
