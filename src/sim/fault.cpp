#include "sim/fault.hpp"

#include <stdexcept>

namespace stash::sim {

FaultInjector::FaultInjector(FaultPlan plan, std::uint32_t num_nodes)
    : plan_(std::move(plan)), up_(num_nodes, 1), rng_(plan_.seed) {
  for (const auto& crash : plan_.crashes) {
    if (crash.node >= num_nodes)
      throw std::invalid_argument("FaultPlan: crash targets unknown node");
    if (crash.at < 0)
      throw std::invalid_argument("FaultPlan: crash time must be >= 0");
    if (crash.restart_at != kNever && crash.restart_at <= crash.at)
      throw std::invalid_argument("FaultPlan: restart must follow the crash");
  }
  for (const auto& rule : plan_.links) {
    if (rule.drop_probability < 0.0 || rule.drop_probability > 1.0)
      throw std::invalid_argument("FaultPlan: drop probability outside [0,1]");
    if (rule.extra_latency < 0)
      throw std::invalid_argument("FaultPlan: negative extra latency");
  }
}

void FaultInjector::arm(EventLoop& loop) {
  if (armed_) throw std::logic_error("FaultInjector: arm() called twice");
  armed_ = true;
  for (const auto& crash : plan_.crashes) {
    loop.schedule_at(crash.at,
                     [this, node = crash.node] { force_crash(node); });
    if (crash.restart_at != kNever)
      loop.schedule_at(crash.restart_at,
                       [this, node = crash.node] { force_restart(node); });
  }
}

void FaultInjector::force_crash(std::uint32_t node) {
  if (node >= up_.size())
    throw std::invalid_argument("FaultInjector::force_crash: unknown node");
  if (!up_[node]) return;
  up_[node] = 0;
  ++stats_.crashes;
  if (on_crash_) on_crash_(node);
}

void FaultInjector::force_restart(std::uint32_t node) {
  if (node >= up_.size())
    throw std::invalid_argument("FaultInjector::force_restart: unknown node");
  if (up_[node]) return;
  up_[node] = 1;
  ++stats_.restarts;
  if (on_restart_) on_restart_(node);
}

bool FaultInjector::alive(std::uint32_t node) const {
  if (node >= up_.size()) return true;  // frontend / external endpoints
  return up_[node] != 0;
}

const LinkRule* FaultInjector::match(std::uint32_t from,
                                     std::uint32_t to) const {
  for (const auto& rule : plan_.links) {
    const bool from_ok = rule.from == kAnyNode || rule.from == from;
    const bool to_ok = rule.to == kAnyNode || rule.to == to;
    if (from_ok && to_ok) return &rule;
  }
  return nullptr;
}

bool FaultInjector::should_drop(std::uint32_t from, std::uint32_t to) {
  const LinkRule* rule = match(from, to);
  if (rule == nullptr || rule->drop_probability <= 0.0) return false;
  if (rng_.bernoulli(rule->drop_probability)) {
    ++stats_.messages_dropped;
    return true;
  }
  return false;
}

SimTime FaultInjector::extra_latency(std::uint32_t from, std::uint32_t to) {
  const LinkRule* rule = match(from, to);
  if (rule == nullptr || rule->extra_latency <= 0) return 0;
  ++stats_.messages_delayed;
  return rule->extra_latency;
}

}  // namespace stash::sim
