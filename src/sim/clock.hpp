// Virtual time for the deterministic cluster simulation.
//
// The 120-node testbed of §VIII-A is reproduced as a discrete-event
// simulation: real STASH/Galileo data-structure work executes natively,
// while disk, network and scan *durations* advance a virtual clock.  All
// times are integer microseconds so runs are exactly repeatable.
#pragma once

#include <cstdint>
#include <string>

namespace stash::sim {

/// Virtual time / duration in microseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * 1000;

[[nodiscard]] inline double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / 1e6;
}

[[nodiscard]] inline double to_millis(SimTime t) noexcept {
  return static_cast<double>(t) / 1e3;
}

[[nodiscard]] std::string format_duration(SimTime t);

}  // namespace stash::sim
