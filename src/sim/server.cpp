#include "sim/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace stash::sim {

const char* to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kOk: return "ok";
    case Outcome::kShed: return "shed";
    case Outcome::kDeadlineExceeded: return "deadline_exceeded";
    case Outcome::kDropped: return "dropped";
  }
  return "unknown";
}

SimServer::SimServer(EventLoop& loop, int workers)
    : SimServer(loop, Config{workers}) {}

SimServer::SimServer(EventLoop& loop, const Config& config)
    : loop_(loop),
      workers_(config.workers),
      queue_limit_(config.queue_limit),
      admission_(config.admission) {
  if (config.workers < 1)
    throw std::invalid_argument("SimServer: need >= 1 worker");
}

void SimServer::submit(Job job, Completion on_complete, SimTime deadline) {
  if (!job) throw std::invalid_argument("SimServer::submit: null job");
  Pending pending{std::move(job), std::move(on_complete), loop_.now(), deadline};
  if (expired(pending)) {  // dead on arrival
    finish_unserviced(std::move(pending.on_complete), Outcome::kDeadlineExceeded);
    ++expired_;
    return;
  }
  if (busy_ < workers_) {
    dispatch(std::move(pending));
    return;
  }
  if (queue_limit_ != 0 && queue_.size() >= queue_limit_) {
    if (admission_ == AdmissionPolicy::kRejectNew) {
      finish_unserviced(std::move(pending.on_complete), Outcome::kShed);
      ++shed_;
      return;
    }
    // kDropOldest: shed the head of the queue to make room.
    finish_unserviced(std::move(queue_.front().on_complete), Outcome::kShed);
    ++shed_;
    queue_.pop_front();
  }
  queue_.push_back(std::move(pending));
  peak_queue_ = std::max(peak_queue_, queue_.size());
}

void SimServer::finish_unserviced(Completion on_complete, Outcome outcome) {
  if (!on_complete) return;
  loop_.post([done = std::move(on_complete), outcome] { done(outcome); });
}

void SimServer::dispatch(Pending pending) {
  ++busy_;
  queue_wait_ += loop_.now() - pending.enqueued_at;
  const SimTime duration = pending.job();
  if (duration < 0)
    throw std::logic_error("SimServer: job returned negative service time");
  service_time_ += duration;
  const std::uint64_t serial = next_serial_++;
  if (pending.on_complete)
    in_service_.emplace(serial, std::move(pending.on_complete));
  loop_.schedule(duration, [this, epoch = epoch_, serial] {
    if (epoch != epoch_) return;  // server was reset mid-service
    --busy_;
    ++completed_;
    Completion done;
    if (auto it = in_service_.find(serial); it != in_service_.end()) {
      done = std::move(it->second);
      in_service_.erase(it);
    }
    if (done) done(Outcome::kOk);
    try_dispatch();
  });
}

std::size_t SimServer::reset() {
  const std::size_t wiped = queue_.size() + static_cast<std::size_t>(busy_);
  for (Pending& pending : queue_)
    finish_unserviced(std::move(pending.on_complete), Outcome::kDropped);
  for (auto& [serial, done] : in_service_)
    finish_unserviced(std::move(done), Outcome::kDropped);
  queue_.clear();
  in_service_.clear();
  dropped_ += wiped;
  busy_ = 0;
  ++epoch_;
  return wiped;
}

void SimServer::try_dispatch() {
  while (busy_ < workers_ && !queue_.empty()) {
    Pending next = std::move(queue_.front());
    queue_.pop_front();
    if (expired(next)) {  // deadline passed while waiting for a worker
      finish_unserviced(std::move(next.on_complete), Outcome::kDeadlineExceeded);
      ++expired_;
      continue;
    }
    dispatch(std::move(next));
  }
}

}  // namespace stash::sim
