#include "sim/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace stash::sim {

SimServer::SimServer(EventLoop& loop, int workers)
    : loop_(loop), workers_(workers) {
  if (workers < 1) throw std::invalid_argument("SimServer: need >= 1 worker");
}

void SimServer::submit(Job job, Completion on_complete) {
  if (!job) throw std::invalid_argument("SimServer::submit: null job");
  Pending pending{std::move(job), std::move(on_complete), loop_.now()};
  if (busy_ < workers_) {
    dispatch(std::move(pending));
  } else {
    queue_.push_back(std::move(pending));
    peak_queue_ = std::max(peak_queue_, queue_.size());
  }
}

void SimServer::dispatch(Pending pending) {
  ++busy_;
  queue_wait_ += loop_.now() - pending.enqueued_at;
  const SimTime duration = pending.job();
  if (duration < 0)
    throw std::logic_error("SimServer: job returned negative service time");
  service_time_ += duration;
  loop_.schedule(duration,
                 [this, epoch = epoch_, done = std::move(pending.on_complete)] {
                   if (epoch != epoch_) return;  // server was reset mid-service
                   --busy_;
                   ++completed_;
                   if (done) done();
                   try_dispatch();
                 });
}

std::size_t SimServer::reset() {
  const std::size_t dropped = queue_.size() + static_cast<std::size_t>(busy_);
  queue_.clear();
  busy_ = 0;
  ++epoch_;
  return dropped;
}

void SimServer::try_dispatch() {
  while (busy_ < workers_ && !queue_.empty()) {
    Pending next = std::move(queue_.front());
    queue_.pop_front();
    dispatch(std::move(next));
  }
}

}  // namespace stash::sim
