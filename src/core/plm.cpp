#include "core/plm.hpp"

#include <stdexcept>

#include "common/checksum.hpp"

namespace stash {
namespace {

std::size_t day_bit(const ChunkKey& chunk, std::int64_t day) {
  const std::int64_t first = chunk.first_day();
  const auto count = static_cast<std::int64_t>(chunk.day_count());
  if (day < first || day >= first + count)
    throw std::invalid_argument("PrecisionLevelMap: day outside the chunk's bin");
  return static_cast<std::size_t>(day - first);
}

}  // namespace

PrecisionLevelMap::LevelMap& PrecisionLevelMap::level(int idx) {
  if (idx < 0 || idx >= kNumLevels)
    throw std::out_of_range("PrecisionLevelMap: bad level index");
  return levels_[static_cast<std::size_t>(idx)];
}

const PrecisionLevelMap::LevelMap& PrecisionLevelMap::level(int idx) const {
  if (idx < 0 || idx >= kNumLevels)
    throw std::out_of_range("PrecisionLevelMap: bad level index");
  return levels_[static_cast<std::size_t>(idx)];
}

void PrecisionLevelMap::mark_day(int lvl, const ChunkKey& chunk, std::int64_t day) {
  auto [it, inserted] = level(lvl).try_emplace(chunk, chunk.day_count());
  it->second.set(day_bit(chunk, day));
}

void PrecisionLevelMap::mark_all(int lvl, const ChunkKey& chunk) {
  auto [it, inserted] = level(lvl).try_emplace(chunk, chunk.day_count());
  for (std::size_t i = 0; i < it->second.size(); ++i) it->second.set(i);
}

bool PrecisionLevelMap::is_complete(int lvl, const ChunkKey& chunk) const {
  const auto& map = level(lvl);
  const auto it = map.find(chunk);
  return it != map.end() && it->second.all();
}

bool PrecisionLevelMap::all_complete(int lvl,
                                     const std::vector<ChunkKey>& chunks) const {
  const auto& map = level(lvl);
  for (const ChunkKey& chunk : chunks) {
    const auto it = map.find(chunk);
    if (it == map.end() || !it->second.all()) return false;
  }
  return true;
}

bool PrecisionLevelMap::is_known(int lvl, const ChunkKey& chunk) const {
  return level(lvl).contains(chunk);
}

std::vector<std::int64_t> PrecisionLevelMap::missing_days(
    int lvl, const ChunkKey& chunk) const {
  const std::int64_t first = chunk.first_day();
  const auto& map = level(lvl);
  const auto it = map.find(chunk);
  std::vector<std::int64_t> out;
  if (it == map.end()) {
    out.reserve(chunk.day_count());
    for (std::size_t i = 0; i < chunk.day_count(); ++i)
      out.push_back(first + static_cast<std::int64_t>(i));
    return out;
  }
  for (std::size_t i : it->second.zero_indices())
    out.push_back(first + static_cast<std::int64_t>(i));
  return out;
}

void PrecisionLevelMap::erase(int lvl, const ChunkKey& chunk) {
  level(lvl).erase(chunk);
}

std::size_t PrecisionLevelMap::invalidate_block(std::string_view partition,
                                                std::int64_t day) {
  std::size_t demoted = 0;
  for (auto& lvl : levels_) {
    for (auto& [chunk, bits] : lvl) {
      const std::string prefix = chunk.prefix_str();
      // A chunk is affected when its prefix and the partition nest either way.
      const bool spatial_hit = prefix.size() >= partition.size()
                                   ? std::string_view(prefix).substr(
                                         0, partition.size()) == partition
                                   : partition.substr(0, prefix.size()) == prefix;
      if (!spatial_hit) continue;
      const std::int64_t first = chunk.first_day();
      const auto count = static_cast<std::int64_t>(chunk.day_count());
      if (day < first || day >= first + count) continue;
      const bool was_complete = bits.all();
      bits.reset(static_cast<std::size_t>(day - first));
      if (was_complete) ++demoted;
    }
  }
  return demoted;
}

std::uint64_t PrecisionLevelMap::bitmap_hash(int lvl,
                                             const ChunkKey& chunk) const {
  const auto& map = level(lvl);
  const auto it = map.find(chunk);
  if (it == map.end()) return 0;
  const DynamicBitset& bits = it->second;
  // Built on the shared integrity checksum (common/checksum.hpp) so an
  // anti-entropy digest mismatch detects rotted content as well as
  // divergent coverage — the same primitive the frame footer verifies.
  Checksum64 sum(0x504c4d44ULL);  // "PLMD" domain separation
  sum.mix(bits.size());
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits.test(i)) word |= 1ULL << (i & 63);
    if ((i & 63) == 63) {
      sum.mix(word);
      word = 0;
    }
  }
  if (bits.size() % 64 != 0) sum.mix(word);
  const std::uint64_t h = sum.digest();
  return h == 0 ? 1 : h;  // 0 is reserved for "unknown"
}

std::size_t PrecisionLevelMap::chunk_count(int lvl) const {
  return level(lvl).size();
}

std::size_t PrecisionLevelMap::total_chunks() const {
  std::size_t total = 0;
  for (const auto& lvl : levels_) total += lvl.size();
  return total;
}

}  // namespace stash
