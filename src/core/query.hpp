// Aggregation queries for visual exploration (paper §II-B).
//
// The query a front-end action translates to: "select max(temperature), ...
// where coordinates in Query_Polygon and time_stamp in Query_Time group by
// spatial_resolution, temporal_resolution".  Query_Polygon is a lat/lon
// rectangle; the result is one full-bin Cell per (geohash, temporal-bin)
// whose bounds intersect the query — tile semantics, so Cells are reusable
// across overlapping queries (§V-B).
#pragma once

#include "geo/latlng.hpp"
#include "geo/resolution.hpp"
#include "geo/temporal.hpp"

namespace stash {

struct AggregationQuery {
  BoundingBox area;
  TimeRange time;
  Resolution res;

  [[nodiscard]] bool valid() const noexcept {
    return area.valid() && time.valid() && time.begin < time.end && res.valid();
  }

  [[nodiscard]] std::string to_string() const {
    return area.to_string() + " x [" + std::to_string(time.begin) + "," +
           std::to_string(time.end) + ") @ " + res.to_string();
  }
};

}  // namespace stash
