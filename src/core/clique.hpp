// Cliques: the unit of hotspot replication (paper §VII-B.2).
//
// "We define Cliques as a subgraph of Cells from the STASH graph of a
// pre-configured size (depth).  For example a Clique of depth 2 would
// consist of a Cell C_i and all its children Cells ... Cliques are
// identified by the spatiotemporal label of their topmost parent Cell."
//
// Our Cells live in chunks, so a Clique is a root chunk plus the resident
// chunks of hierarchically finer levels covering the same region, down to
// `depth` levels.  The hotspotted node picks the top-K Cliques by
// cumulative freshness whose total size stays within N replicable Cells.
#pragma once

#include <vector>

#include "core/graph.hpp"

namespace stash {

struct CliqueMember {
  Resolution res;
  ChunkKey chunk;
  std::size_t cell_count = 0;
};

struct Clique {
  Resolution root_res;
  ChunkKey root;  // the identifying spatiotemporal label (§VII-B.2)
  std::vector<CliqueMember> members;
  std::size_t cell_count = 0;
  double freshness = 0.0;  // cumulative, at selection time

  [[nodiscard]] std::string label() const { return root.label(); }
};

class CliqueSelector {
 public:
  explicit CliqueSelector(const StashGraph& graph) : graph_(graph) {}

  /// Builds the Clique rooted at (res, root): the root chunk plus resident
  /// descendant-level chunks within `depth` hierarchy levels (spatial and
  /// temporal refinements).
  [[nodiscard]] Clique build(const Resolution& res, const ChunkKey& root,
                             int depth, sim::SimTime now) const;

  /// Top Cliques by cumulative freshness: greedily picks non-overlapping
  /// Cliques until `max_cells` total or `max_cliques` are selected.
  [[nodiscard]] std::vector<Clique> select_top(sim::SimTime now,
                                               std::size_t max_cells,
                                               std::size_t max_cliques,
                                               int depth) const;

 private:
  const StashGraph& graph_;
};

/// Extracts a Clique's Cells from a graph as ready-to-install contributions
/// — the payload of a Replication Request (§VII-B.4).  Only complete chunks
/// are shipped: a helper must never serve partial summaries.
[[nodiscard]] std::vector<ChunkContribution> clique_payload(
    const StashGraph& graph, const Clique& clique);

/// Same payload contract for an explicit chunk list — the pull side of
/// anti-entropy recovery: a rejoining node names exactly the complete
/// chunks its PLM digest is missing and a replica holder ships them.
[[nodiscard]] std::vector<ChunkContribution> chunk_payload(
    const StashGraph& graph,
    const std::vector<std::pair<Resolution, ChunkKey>>& chunks);

}  // namespace stash
