// Thread-safe facade over StashGraph.
//
// The cluster simulation is single-threaded by design (deterministic
// virtual time), but the library is also usable as an embedded in-process
// cache — e.g. the front-end STASH graph of §IX-A — where real reader and
// maintenance threads race.  This wrapper serialises mutations and lets
// reads proceed concurrently via a shared mutex, with the same API shape
// as StashGraph for the operations a cache client needs.
//
// Locking model: one annotated SharedMutex guards the whole graph; the
// guarded state is declared STASH_GUARDED_BY(mutex_) so Clang's
// -Wthread-safety proves every access holds the right capability (see
// common/thread_annotations.hpp).  STASH's operations are region-granular
// (absorb a chunk, collect a chunk, touch a region), so the critical
// sections are short; a per-level striped scheme was measured to gain
// nothing at the fan-in the front-end sees and is not worth the
// lock-ordering complexity during hierarchical synthesis, which reads two
// levels at once.
#pragma once

#include "common/thread_annotations.hpp"
#include "core/audit.hpp"
#include "core/graph.hpp"

namespace stash {

class ConcurrentStashGraph {
 public:
  explicit ConcurrentStashGraph(StashConfig config = {}) : graph_(config) {}

  // --- reads (shared lock) ---
  [[nodiscard]] bool chunk_complete(const Resolution& res,
                                    const ChunkKey& chunk) const
      STASH_EXCLUDES(mutex_) {
    ReaderLock lock(mutex_);
    return graph_.chunk_complete(res, chunk);
  }

  [[nodiscard]] std::vector<std::int64_t> chunk_missing_days(
      const Resolution& res, const ChunkKey& chunk) const
      STASH_EXCLUDES(mutex_) {
    ReaderLock lock(mutex_);
    return graph_.chunk_missing_days(res, chunk);
  }

  std::size_t collect_chunk(const Resolution& res, const ChunkKey& chunk,
                            const BoundingBox& box, const TimeRange& time,
                            CellSummaryMap& out) const STASH_EXCLUDES(mutex_) {
    ReaderLock lock(mutex_);
    return graph_.collect_chunk(res, chunk, box, time, out);
  }

  [[nodiscard]] std::optional<Summary> find_cell(const CellKey& key) const
      STASH_EXCLUDES(mutex_) {
    ReaderLock lock(mutex_);
    const Summary* found = graph_.find_cell(key);
    return found == nullptr ? std::nullopt : std::make_optional(*found);
  }

  [[nodiscard]] std::size_t total_cells() const STASH_EXCLUDES(mutex_) {
    ReaderLock lock(mutex_);
    return graph_.total_cells();
  }

  [[nodiscard]] double chunk_freshness(const Resolution& res,
                                       const ChunkKey& chunk,
                                       sim::SimTime now) const
      STASH_EXCLUDES(mutex_) {
    ReaderLock lock(mutex_);
    return graph_.chunk_freshness(res, chunk, now);
  }

  /// Structural-invariant audit of the guarded graph (core/audit.hpp),
  /// taken under the shared lock so it sees one consistent snapshot.
  [[nodiscard]] AuditReport audit(AuditOptions options = {}) const
      STASH_EXCLUDES(mutex_) {
    ReaderLock lock(mutex_);
    return GraphAuditor(options).audit(graph_);
  }

  // --- writes (exclusive lock) ---
  std::size_t absorb(const ChunkContribution& contribution, sim::SimTime now)
      STASH_EXCLUDES(mutex_) {
    WriterLock lock(mutex_);
    return graph_.absorb(contribution, now);
  }

  std::size_t touch_region(const Resolution& res,
                           const std::vector<ChunkKey>& accessed,
                           sim::SimTime now) STASH_EXCLUDES(mutex_) {
    WriterLock lock(mutex_);
    return graph_.touch_region(res, accessed, now);
  }

  std::size_t evict_if_needed(sim::SimTime now) STASH_EXCLUDES(mutex_) {
    WriterLock lock(mutex_);
    return graph_.evict_if_needed(now);
  }

  std::size_t invalidate_block(std::string_view partition, std::int64_t day)
      STASH_EXCLUDES(mutex_) {
    WriterLock lock(mutex_);
    return graph_.invalidate_block(partition, day);
  }

  void clear() STASH_EXCLUDES(mutex_) {
    WriterLock lock(mutex_);
    graph_.clear();
  }

  /// Runs `fn(const StashGraph&)` under the shared lock — for compound
  /// reads that must see one consistent snapshot.
  template <typename Fn>
  auto with_read_lock(Fn&& fn) const STASH_EXCLUDES(mutex_) {
    ReaderLock lock(mutex_);
    return fn(static_cast<const StashGraph&>(graph_));
  }

 private:
  mutable SharedMutex mutex_;
  StashGraph graph_ STASH_GUARDED_BY(mutex_);
};

}  // namespace stash
