// Query evaluation strategy (paper §IV-D, §V-B).
//
// "Any subsequent query will be evaluated over the cached values first.
// Disk access is required only if (a) there are missing values for
// completing query evaluation, and (b) those missing values are not
// available by computing from the existing cached values."
//
// The engine realises that contract per chunk:
//   1. PLM says complete      -> serve from the graph (cache hit),
//   2. children levels resident -> synthesize by roll-up (no disk),
//   3. otherwise              -> scan only the missing days from Galileo.
// Fetched/synthesized Cells are returned for the background maintenance
// pass (absorb), which populates the graph "in a separate thread" (§VIII-C.2)
// so response latency excludes population cost (Fig 6c measures it).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "core/graph.hpp"
#include "core/query.hpp"
#include "storage/galileo_store.hpp"

namespace stash {

enum class EvalMode {
  Basic,      // no cache at all: every chunk scans disk (the "no STASH" system)
  Cached,     // cache first, synthesis second, disk for the remainder
  CacheOnly,  // guest-graph mode: never touch disk; misses are reported
};

struct EvalBreakdown {
  std::size_t chunks_total = 0;
  std::size_t chunks_from_cache = 0;
  std::size_t chunks_synthesized = 0;
  std::size_t chunks_scanned = 0;
  std::size_t chunks_missing = 0;  // CacheOnly misses
  std::size_t cache_probes = 0;
  std::size_t cells_from_cache = 0;
  std::size_t cells_synthesized = 0;
  std::size_t cells_scanned = 0;
  std::size_t synthesis_merges = 0;
  ScanStats scan;

  EvalBreakdown& operator+=(const EvalBreakdown& other) noexcept;
};

struct Evaluation {
  CellSummaryMap cells;                    // the response payload
  EvalBreakdown breakdown;
  std::vector<ChunkContribution> fetched;  // for the maintenance pass
  std::vector<ChunkKey> touched_chunks;    // freshness region of this query
  /// Blocks that failed checksum verification during the disk path.  Their
  /// days are withheld from the response AND from `fetched` (so the PLM
  /// never marks them complete); the caller must flag the answer partial
  /// and schedule repair.
  std::vector<BlockKey> corrupt_blocks;
};

/// A coarse answer assembled from a cached ancestor level when the exact
/// resolution cannot be served in time (overload shedding, deadline
/// pressure).  Correct at `served_res` — never partial, never stale-mixed:
/// a level is only used when the whole covering region is PLM-complete.
struct DegradedEvaluation {
  Evaluation eval;           // cells at served_res; breakdown is cache reads only
  Resolution served_res;     // the level actually served
  int coarsening_steps = 0;  // hierarchy distance from the requested level
  bool found = false;        // false: no PLM-complete ancestor region resident
};

struct MaintenanceStats {
  std::size_t cells_absorbed = 0;
  std::size_t freshness_updates = 0;
  std::size_t cells_evicted = 0;
};

/// Cooperative-cancellation probe for long evaluations.  The core engine
/// knows nothing about threads or tokens; the wall-clock executor passes
/// an adapter over concurrency::CancellationToken and evaluate_chunk
/// polls it between per-day cell scans — the unit below which giving up
/// saves nothing.  A chunk that observes cancellation returns early with
/// `ChunkEvalResult::cancelled` set and its partial output must be
/// discarded by the caller (a half-scanned chunk is not an honest answer).
class CancelProbe {
 public:
  virtual ~CancelProbe() = default;
  [[nodiscard]] virtual bool cancelled() const noexcept = 0;
};

/// Everything one chunk contributes to a partition evaluation, except the
/// response cells (those are appended straight into a caller-supplied map
/// so the sequential path keeps its exact insertion order).  This is the
/// unit the wall-clock executor shards across worker threads: chunks are
/// independent — a cell belongs to exactly one chunk at a given
/// resolution — so per-chunk results merge without cross-chunk summary
/// merges (src/exec/parallel_engine.cpp relies on that).
struct ChunkEvalResult {
  EvalBreakdown breakdown;  // deltas; scan.blocks_touched is finalized later
  std::optional<ChunkContribution> fetched;
  std::vector<BlockKey> corrupt_blocks;
  std::vector<std::int64_t> days_scanned;  // disk days, for seek accounting
  /// The CancelProbe fired mid-chunk: everything above is partial and
  /// must be discarded (cells already appended to out_cells included).
  bool cancelled = false;
};

class QueryEngine {
 public:
  QueryEngine(StashGraph& graph, const GalileoStore& store);

  /// Evaluates the part of `query` that falls inside one DHT partition —
  /// what a storage node executes for its subquery.
  [[nodiscard]] Evaluation evaluate_partition(std::string_view partition,
                                              const AggregationQuery& query,
                                              EvalMode mode = EvalMode::Cached) const;

  /// Degraded evaluation for one partition: walks the requested resolution
  /// and its ancestor levels nearest-first (BFS over parent_resolutions)
  /// and serves the first level whose covering chunks are all PLM-complete.
  /// Never touches disk — this is the overload escape hatch, so it must
  /// cost only cache probes and reads.  `found == false` when nothing
  /// resident can answer; coarsening never drops below the DHT partition
  /// prefix length (coarser Cells would span storage partitions).
  [[nodiscard]] DegradedEvaluation evaluate_degraded(
      std::string_view partition, const AggregationQuery& query) const;

  /// Whole-query evaluation across every partition the area touches
  /// (single-process / library use).
  [[nodiscard]] Evaluation evaluate(const AggregationQuery& query,
                                    EvalMode mode = EvalMode::Cached) const;

  /// Evaluates exactly one chunk of a partition subquery: the cache /
  /// synthesis / disk decision of §IV-D for that chunk.  Response cells
  /// are appended into `out_cells`; everything else comes back in the
  /// result.  `clipped` must be the query area already intersected with
  /// the partition box (see evaluate_partition).  Thread-safe for
  /// concurrent const use when no graph mutation runs — the wall-clock
  /// executor guards that with its RwSpinlock.  `cancel` (optional) is
  /// polled between per-day scans; see CancelProbe.
  [[nodiscard]] ChunkEvalResult evaluate_chunk(
      std::string_view partition, const AggregationQuery& query,
      const BoundingBox& clipped, const ChunkKey& chunk, EvalMode mode,
      CellSummaryMap& out_cells, const CancelProbe* cancel = nullptr) const;

  /// The canonical (prefix-major, bin-minor) chunk enumeration for a
  /// partition subquery, and the clipped box it applies to.  Sequential
  /// and wall-clock evaluation both follow this order, which is what
  /// makes their merged answers byte-identical.
  struct PartitionPlan {
    BoundingBox clipped;
    std::vector<ChunkKey> chunks;
    bool empty = true;  // partition does not intersect the query area
  };
  [[nodiscard]] PartitionPlan plan_partition(
      std::string_view partition, const AggregationQuery& query) const;

  /// Maintenance pass: absorbs fetched Cells into the graph, updates
  /// freshness with neighborhood dispersion, and evicts if over capacity.
  MaintenanceStats absorb(const Evaluation& eval, const Resolution& res,
                          sim::SimTime now);

  [[nodiscard]] StashGraph& graph() noexcept { return graph_; }
  [[nodiscard]] const GalileoStore& store() const noexcept { return store_; }

 private:
  /// Tries to roll the chunk up from a fully-resident child level;
  /// nullopt when no child level can cover it.
  [[nodiscard]] std::optional<ChunkContribution> synthesize(
      const Resolution& res, const ChunkKey& chunk,
      EvalBreakdown& breakdown) const;

  StashGraph& graph_;
  const GalileoStore& store_;
};

}  // namespace stash
