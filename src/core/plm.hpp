// Precision-Level Map (PLM), paper §IV-D.
//
// "Across multiple precision levels, STASH relies on the precision-level
// map (PLM) to check for completeness of the in-memory data.  The PLM is a
// memory-resident bitmap that associates the Cells contained in-memory for
// a given level to the actual data blocks in the distributed storage."
//
// Concretely: for every level, each resident chunk carries a bitmap with
// one bit per storage block (= per day) that has contributed its records.
// A chunk is complete when all its days have contributed; queries fetch
// only the missing days.  Real-time ingest invalidates the affected days
// so stale summaries are recomputed (§IV-D, §VII-A).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bitset.hpp"
#include "core/chunk.hpp"
#include "geo/resolution.hpp"

namespace stash {

class PrecisionLevelMap {
 public:
  /// Marks one storage block (epoch day) of a chunk as contributed.
  void mark_day(int level, const ChunkKey& chunk, std::int64_t day);

  /// Marks every contributing block of a chunk (after a full-bin scan).
  void mark_all(int level, const ChunkKey& chunk);

  /// True when every contributing block of the chunk is in memory.
  [[nodiscard]] bool is_complete(int level, const ChunkKey& chunk) const;

  /// True when *every* chunk in `chunks` is complete at `level` (vacuously
  /// true for an empty list).  The completeness predicate behind degraded
  /// answers: a cached ancestor region may only be served when the whole
  /// covering is PLM-complete, or the coarse answer would silently miss data.
  [[nodiscard]] bool all_complete(int level,
                                  const std::vector<ChunkKey>& chunks) const;

  /// True when the chunk has at least one contribution recorded.
  [[nodiscard]] bool is_known(int level, const ChunkKey& chunk) const;

  /// Epoch days still missing for a chunk (all of them if unknown).
  [[nodiscard]] std::vector<std::int64_t> missing_days(int level,
                                                       const ChunkKey& chunk) const;

  /// Removes a chunk's residency record entirely (on eviction).
  void erase(int level, const ChunkKey& chunk);

  /// Invalidates one storage block everywhere it contributed: every chunk
  /// of every level whose prefix lies inside `partition` and whose bin
  /// covers `day` loses that day bit.  Models a real-time data update
  /// ("the PLM can be adjusted during an update ... so that stale data
  /// summaries are recomputed in case of future access").  Returns the
  /// number of chunks demoted from complete to incomplete.
  std::size_t invalidate_block(std::string_view partition, std::int64_t day);

  /// Stable 64-bit digest of one chunk's residency bitmap; 0 when the
  /// chunk is unknown at this level.  Two nodes hold identical coverage of
  /// a chunk iff their digests match, which makes this the comparison unit
  /// of anti-entropy: a recovering node pulls exactly the chunks whose
  /// digests differ from a replica holder's, never the ones it already has.
  [[nodiscard]] std::uint64_t bitmap_hash(int level, const ChunkKey& chunk) const;

  [[nodiscard]] std::size_t chunk_count(int level) const;
  [[nodiscard]] std::size_t total_chunks() const;

  /// All tracked chunks of a level, for diagnostics and clique selection.
  template <typename Fn>
  void for_each_chunk(int level, Fn&& fn) const {
    for (const auto& [key, bits] : levels_[static_cast<std::size_t>(level)])
      fn(key, bits);
  }

 private:
  using LevelMap = std::unordered_map<ChunkKey, DynamicBitset, ChunkKeyHash>;

  /// See StashGraph: auditor unit tests corrupt bitmaps through this peer.
  friend struct StashGraphTestPeer;

  [[nodiscard]] LevelMap& level(int idx);
  [[nodiscard]] const LevelMap& level(int idx) const;

  std::array<LevelMap, kNumLevels> levels_;
};

}  // namespace stash
