#include "core/routing_table.hpp"

namespace stash {

void RoutingTable::add(const Resolution& res, const ChunkKey& chunk,
                       NodeId helper, sim::SimTime now) {
  entries_[Key{level_index(res), chunk}] = Entry{helper, now};
}

std::optional<NodeId> RoutingTable::lookup(const Resolution& res,
                                           const std::vector<ChunkKey>& chunks,
                                           sim::SimTime now,
                                           sim::SimTime ttl) const {
  if (chunks.empty() || entries_.empty()) return std::nullopt;
  std::optional<NodeId> helper;
  const int level = level_index(res);
  for (const auto& chunk : chunks) {
    const auto it = entries_.find(Key{level, chunk});
    if (it == entries_.end()) return std::nullopt;
    if (now - it->second.replicated_at > ttl) return std::nullopt;
    if (helper.has_value() && *helper != it->second.helper) return std::nullopt;
    helper = it->second.helper;
  }
  return helper;
}

std::size_t RoutingTable::purge(sim::SimTime now, sim::SimTime ttl) {
  std::size_t purged = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.replicated_at > ttl) {
      it = entries_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  return purged;
}

std::size_t RoutingTable::drop_helper(NodeId helper) {
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.helper == helper) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace stash
