// Edge derivation: the inter-Cell relationships of §IV-B, computed on
// demand.
//
// "STASH provides a set of composable vertex discovery schemes (through
// hierarchical and linear edge), instead of each Cell storing pointers to
// all its neighborhood Cells, that reduce the memory requirement and
// network communications significantly." (§IV-D)
//
// Hierarchical edges (E_H): up to 3 parents (one step coarser spatially,
// temporally, or both) and the matching child sets.  Lateral edges (E_L):
// the 8 spatial neighbors at equal resolution plus the 2 temporal
// neighbors (Fig 1).
#pragma once

#include <vector>

#include "geo/cell_key.hpp"

namespace stash::edges {

/// Hierarchical parents of a Cell: spatial parent, temporal parent,
/// spatiotemporal parent — whichever exist (paper §IV-B: "Each Cell can
/// have 3 different parent precisions").
[[nodiscard]] std::vector<CellKey> hierarchical_parents(const CellKey& key);

/// The spatial children (32 cells, one geohash character finer) at the same
/// temporal bin; empty at max spatial precision.
[[nodiscard]] std::vector<CellKey> spatial_children(const CellKey& key);

/// The temporal children (12/28–31/24 bins) at the same geohash; empty at
/// Hour resolution.
[[nodiscard]] std::vector<CellKey> temporal_children(const CellKey& key);

/// All hierarchical children one level away on either (or both) axes.
[[nodiscard]] std::vector<CellKey> hierarchical_children(const CellKey& key);

/// Lateral edges: up to 8 spatial neighbors at the same bin plus the two
/// temporal neighbors at the same geohash (paper Fig 1).
[[nodiscard]] std::vector<CellKey> lateral_neighbors(const CellKey& key);

}  // namespace stash::edges
