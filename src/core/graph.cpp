#include "core/graph.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "common/checksum.hpp"
#include "core/audit.hpp"

namespace stash {

void StashGraph::self_audit(const char* op) const {
#if STASH_AUDIT
  const AuditReport report = GraphAuditor().audit(*this);
  if (!report.ok())
    throw std::logic_error(std::string("StashGraph invariant violated after ") +
                           op + ":\n" + report.to_string());
#else
  (void)op;
#endif
}

StashGraph::StashGraph(StashConfig config) : config_(config) {
  if (config_.chunk_precision < 1 ||
      config_.chunk_precision > geohash::kMaxPrecision)
    throw std::invalid_argument("StashGraph: bad chunk precision");
  if (config_.safe_limit_fraction <= 0.0 || config_.safe_limit_fraction > 1.0)
    throw std::invalid_argument("StashGraph: bad safe limit fraction");
}

StashGraph::LevelMap& StashGraph::level_of(const Resolution& res) {
  if (!res.valid()) throw std::invalid_argument("StashGraph: bad resolution");
  return levels_[static_cast<std::size_t>(level_index(res))];
}

const StashGraph::LevelMap& StashGraph::level_of(const Resolution& res) const {
  if (!res.valid()) throw std::invalid_argument("StashGraph: bad resolution");
  return levels_[static_cast<std::size_t>(level_index(res))];
}

bool StashGraph::chunk_complete(const Resolution& res, const ChunkKey& chunk) const {
  return plm_.is_complete(level_index(res), chunk);
}

bool StashGraph::chunk_known(const Resolution& res, const ChunkKey& chunk) const {
  return plm_.is_known(level_index(res), chunk);
}

bool StashGraph::region_complete(const Resolution& res,
                                 const std::vector<ChunkKey>& chunks) const {
  return plm_.all_complete(level_index(res), chunks);
}

std::vector<std::int64_t> StashGraph::chunk_missing_days(
    const Resolution& res, const ChunkKey& chunk) const {
  return plm_.missing_days(level_index(res), chunk);
}

std::size_t StashGraph::collect_chunk(const Resolution& res, const ChunkKey& chunk,
                                      const BoundingBox& box, const TimeRange& time,
                                      CellSummaryMap& out) const {
  const auto& level = level_of(res);
  const auto it = level.find(chunk);
  if (it == level.end()) return 0;
  std::size_t appended = 0;
  for (const auto& [key, summary] : it->second.cells) {
    if (!key.bounds().intersects(box)) continue;
    if (!key.time_range().intersects(time)) continue;
    out.try_emplace(key, summary);
    ++appended;
  }
  return appended;
}

const StashGraph::ChunkData* StashGraph::find_chunk(const Resolution& res,
                                                    const ChunkKey& chunk) const {
  const auto& level = level_of(res);
  const auto it = level.find(chunk);
  return it == level.end() ? nullptr : &it->second;
}

const Summary* StashGraph::find_cell(const CellKey& key) const {
  const Resolution res = key.resolution();
  const ChunkKey chunk = chunk_of(key, config_.chunk_precision);
  const auto* data = find_chunk(res, chunk);
  if (data == nullptr) return nullptr;
  const auto it = data->cells.find(key);
  return it == data->cells.end() ? nullptr : &it->second;
}

std::size_t StashGraph::absorb(const ChunkContribution& contribution,
                               sim::SimTime now) {
  if (!contribution.res.valid())
    throw std::invalid_argument("StashGraph::absorb: bad resolution");
  const int lvl = level_index(contribution.res);
  // Validate the whole batch before touching any state: a day outside the
  // chunk's bin used to throw from the PLM only after the cells were
  // merged, leaving a resident chunk the PLM had never heard of (caught by
  // the GraphAuditor's chunk-plm-missing check).
  const std::int64_t first_day = contribution.chunk.first_day();
  const auto day_span = static_cast<std::int64_t>(contribution.chunk.day_count());
  for (std::int64_t day : contribution.days)
    if (day < first_day || day >= first_day + day_span)
      throw std::invalid_argument(
          "StashGraph::absorb: day outside the chunk's bin");
  // Idempotence guard: refuse a batch whose days were already merged —
  // merging twice would double-count records.
  if (plm_.is_known(lvl, contribution.chunk)) {
    const auto missing = plm_.missing_days(lvl, contribution.chunk);
    for (std::int64_t day : contribution.days)
      if (std::find(missing.begin(), missing.end(), day) == missing.end()) {
        ++stats_.contributions_rejected;
        return 0;
      }
  }
  auto& data = levels_[static_cast<std::size_t>(lvl)][contribution.chunk];
  for (const auto& [key, summary] : contribution.cells) {
    auto [it, inserted] = data.cells.try_emplace(key, summary);
    if (inserted) {
      ++total_cells_;
    } else {
      it->second.merge(summary);
    }
  }
  for (std::int64_t day : contribution.days)
    plm_.mark_day(lvl, contribution.chunk, day);
  data.freshness.touch(config_.freshness_increment, now,
                       config_.freshness_half_life);
  ++stats_.contributions_absorbed;
  stats_.cells_absorbed += contribution.cells.size();
  self_audit("absorb");
  return contribution.cells.size();
}

std::size_t StashGraph::touch_region(const Resolution& res,
                                     const std::vector<ChunkKey>& accessed,
                                     sim::SimTime now) {
  auto& level = level_of(res);
  std::size_t updates = 0;
  for (const auto& chunk : accessed) {
    const auto it = level.find(chunk);
    if (it == level.end()) continue;
    it->second.freshness.touch(config_.freshness_increment, now,
                               config_.freshness_half_life);
    ++updates;
  }
  // Disperse a fraction of f_inc to the resident spatiotemporal
  // neighborhood (the grey Cells of Fig 3).  Chunks in the accessed set
  // itself were already bumped; duplicates among neighbors are bumped per
  // neighboring accessed chunk, matching the paper's per-region dispersion.
  const double dispersed =
      config_.freshness_increment * config_.dispersion_fraction;
  if (dispersed > 0.0) {
    const std::unordered_map<ChunkKey, bool, ChunkKeyHash> accessed_set = [&] {
      std::unordered_map<ChunkKey, bool, ChunkKeyHash> set;
      for (const auto& c : accessed) set.emplace(c, true);
      return set;
    }();
    for (const auto& chunk : accessed) {
      for (const auto& neighbor : chunk_neighbors(chunk)) {
        if (accessed_set.contains(neighbor)) continue;
        const auto it = level.find(neighbor);
        if (it == level.end()) continue;
        it->second.freshness.touch(dispersed, now, config_.freshness_half_life);
        ++updates;
      }
    }
  }
  stats_.freshness_touches += updates;
  return updates;
}

double StashGraph::chunk_freshness(const Resolution& res, const ChunkKey& chunk,
                                   sim::SimTime now) const {
  const auto* data = find_chunk(res, chunk);
  return data == nullptr
             ? 0.0
             : data->freshness.at(now, config_.freshness_half_life);
}

std::size_t StashGraph::total_chunks() const noexcept {
  std::size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

std::uint64_t StashGraph::chunk_digest(const Resolution& res,
                                       const ChunkKey& chunk) const {
  const int lvl = level_index(res);
  const std::uint64_t coverage = plm_.bitmap_hash(lvl, chunk);
  if (coverage == 0) return 0;  // unknown chunk, matching the PLM convention
  // Cells live in an unordered_map whose iteration order differs between
  // instances, so per-cell digests are combined by wrapping addition — an
  // order-independent fold — before the final mix.
  std::uint64_t cells = 0;
  if (const ChunkData* data = find_chunk(res, chunk)) {
    for (const auto& [key, summary] : data->cells) {
      Checksum64 cell;
      cell.mix(key.spatial).mix(key.temporal);
      for (const auto& attr : summary.attributes()) {
        cell.mix(attr.count);
        cell.mix(std::bit_cast<std::uint64_t>(attr.min));
        cell.mix(std::bit_cast<std::uint64_t>(attr.max));
        cell.mix(std::bit_cast<std::uint64_t>(attr.sum));
        cell.mix(std::bit_cast<std::uint64_t>(attr.sum_sq));
      }
      cells += cell.digest();
    }
  }
  const std::uint64_t h = Checksum64().mix(coverage).mix(cells).digest();
  return h == 0 ? 1 : h;
}

std::size_t StashGraph::drop_chunk(const Resolution& res,
                                   const ChunkKey& chunk) {
  const ChunkData* data = find_chunk(res, chunk);
  const std::size_t cells = data == nullptr ? 0 : data->cells.size();
  if (data == nullptr && !plm_.is_known(level_index(res), chunk)) return 0;
  erase_chunk(level_index(res), chunk);
  self_audit("drop_chunk");
  return cells;
}

void StashGraph::erase_chunk(int level_idx, const ChunkKey& chunk) {
  auto& level = levels_[static_cast<std::size_t>(level_idx)];
  const auto it = level.find(chunk);
  if (it == level.end()) return;
  total_cells_ -= it->second.cells.size();
  level.erase(it);
  plm_.erase(level_idx, chunk);
}

std::size_t StashGraph::evict_if_needed(sim::SimTime now) {
  if (total_cells_ <= config_.max_cells) return 0;
  return evict_to(config_.safe_limit(), now);
}

std::size_t StashGraph::evict_to(std::size_t target_cells, sim::SimTime now) {
  if (total_cells_ <= target_cells) return 0;
  struct Candidate {
    double score;
    int level;
    ChunkKey chunk;
    std::size_t cells;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(total_chunks());
  for (int lvl = 0; lvl < kNumLevels; ++lvl) {
    for (const auto& [chunk, data] : levels_[static_cast<std::size_t>(lvl)])
      candidates.push_back({data.freshness.at(now, config_.freshness_half_life),
                            lvl, chunk, data.cells.size()});
  }
  // Lowest freshness evicted first; ties broken deterministically by key.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score < b.score;
              if (a.level != b.level) return a.level < b.level;
              return a.chunk < b.chunk;
            });
  std::size_t evicted = 0;
  for (const auto& c : candidates) {
    if (total_cells_ <= target_cells) break;
    erase_chunk(c.level, c.chunk);
    evicted += c.cells;
  }
  if (evicted > 0) {
    ++stats_.eviction_passes;
    stats_.cells_evicted += evicted;
  }
  self_audit("evict_to");
  return evicted;
}

std::size_t StashGraph::purge_older_than(sim::SimTime now, sim::SimTime ttl) {
  std::size_t purged = 0;
  for (int lvl = 0; lvl < kNumLevels; ++lvl) {
    auto& level = levels_[static_cast<std::size_t>(lvl)];
    std::vector<ChunkKey> stale;
    for (const auto& [chunk, data] : level)
      if (now - data.freshness.last_update > ttl) stale.push_back(chunk);
    for (const auto& chunk : stale) {
      purged += level.at(chunk).cells.size();
      erase_chunk(lvl, chunk);
    }
  }
  stats_.cells_purged += purged;
  self_audit("purge_older_than");
  return purged;
}

std::size_t StashGraph::invalidate_block(std::string_view partition,
                                         std::int64_t day) {
  // Aggregate summaries are not subtractable (min/max), so a stale block
  // cannot be surgically removed from a Cell: drop every affected chunk
  // entirely and let the next access recompute it ("stale data summaries
  // are recomputed in case of future access", §IV-D).
  std::size_t dropped = 0;
  for (int lvl = 0; lvl < kNumLevels; ++lvl) {
    auto& level = levels_[static_cast<std::size_t>(lvl)];
    std::vector<ChunkKey> affected;
    for (const auto& [chunk, data] : level) {
      const std::string prefix = chunk.prefix_str();
      const bool spatial_hit =
          prefix.size() >= partition.size()
              ? std::string_view(prefix).substr(0, partition.size()) == partition
              : partition.substr(0, prefix.size()) == prefix;
      if (!spatial_hit) continue;
      const std::int64_t first = chunk.first_day();
      if (day < first || day >= first + static_cast<std::int64_t>(chunk.day_count()))
        continue;
      affected.push_back(chunk);
    }
    for (const auto& chunk : affected) {
      erase_chunk(lvl, chunk);
      ++dropped;
    }
  }
  stats_.chunks_invalidated += dropped;
  self_audit("invalidate_block");
  return dropped;
}

void StashGraph::clear() {
  for (auto& level : levels_) level.clear();
  plm_ = PrecisionLevelMap{};
  total_cells_ = 0;
  self_audit("clear");
}

}  // namespace stash
