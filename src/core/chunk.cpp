#include "core/chunk.hpp"

namespace stash {

std::vector<ChunkKey> chunk_neighbors(const ChunkKey& key) {
  std::vector<ChunkKey> out;
  out.reserve(10);
  const std::string prefix = key.prefix_str();
  const TemporalBin bin = key.bin();
  for (const auto& n : geohash::neighbors(prefix)) out.emplace_back(n, bin);
  out.emplace_back(prefix, bin.prev());
  out.emplace_back(prefix, bin.next());
  return out;
}

}  // namespace stash
