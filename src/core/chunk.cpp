#include "core/chunk.hpp"

namespace stash {

std::vector<ChunkKey> chunk_neighbors(const ChunkKey& key) {
  std::vector<ChunkKey> out;
  out.reserve(10);
  const std::string prefix = key.prefix_str();
  const TemporalBin bin = key.bin();
  for (const auto& n : geohash::neighbors(prefix)) out.emplace_back(n, bin);
  out.emplace_back(prefix, bin.prev());
  out.emplace_back(prefix, bin.next());
  return out;
}

std::vector<ChunkChildLevel> chunk_child_levels(const Resolution& res,
                                                const ChunkKey& chunk,
                                                int chunk_precision) {
  const std::string prefix = chunk.prefix_str();
  const TemporalBin bin = chunk.bin();
  std::vector<ChunkChildLevel> out;
  if (res.spatial < geohash::kMaxPrecision) {
    ChunkChildLevel level{{res.spatial + 1, res.temporal}, {}, true};
    if (res.spatial < chunk_precision) {
      // Child chunks are the 32 finer prefixes.
      for (const auto& child : geohash::children(prefix))
        level.chunks.emplace_back(child, bin);
    } else {
      // Chunk precision saturated: the child level shares this chunk key.
      level.chunks.emplace_back(prefix, bin);
    }
    out.push_back(std::move(level));
  }
  if (const auto finer_t = finer(res.temporal)) {
    ChunkChildLevel level{{res.spatial, *finer_t}, {}, false};
    for (const auto& child_bin : bin.children())
      level.chunks.emplace_back(prefix, child_bin);
    out.push_back(std::move(level));
  }
  return out;
}

}  // namespace stash
