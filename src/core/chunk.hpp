// Chunks: the residency / fetch granularity of STASH.
//
// §IV-D: the summary data is stored as "a collection of identifiable
// blocks or chunks with specific spatiotemporal bounds ... that can be
// rummaged and reused from the in-memory store", and the PLM is consulted
// "to identify and retrieve missing chunks".  A chunk groups the Cells of
// one level that share a geohash prefix (default precision 4) and one
// temporal bin: fine-grained enough that panning reuses most of a query's
// footprint, coarse enough that a probe per chunk (not per Cell) keeps
// discovery O(1)-ish per region.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "core/freshness.hpp"
#include "geo/cell_key.hpp"

namespace stash {

struct ChunkKey {
  std::uint64_t prefix = 0;    // geohash::pack of the chunk's spatial prefix
  std::uint32_t temporal = 0;  // TemporalBin::pack of the Cells' bin

  ChunkKey() = default;
  ChunkKey(std::string_view prefix_gh, const TemporalBin& bin)
      : prefix(geohash::pack(prefix_gh)), temporal(bin.pack()) {}

  [[nodiscard]] std::string prefix_str() const { return geohash::unpack(prefix); }
  [[nodiscard]] TemporalBin bin() const { return TemporalBin::unpack(temporal); }
  [[nodiscard]] BoundingBox bounds() const {
    return geohash::decode(prefix_str());
  }
  [[nodiscard]] std::string label() const {
    return prefix_str() + "@" + bin().label();
  }

  /// Epoch days of the storage blocks contributing to this chunk
  /// (1 for Day/Hour bins, 28–31 for Month, 365/366 for Year).
  [[nodiscard]] std::int64_t first_day() const {
    return bin().range().begin / 86400;
  }
  [[nodiscard]] std::size_t day_count() const {
    const TimeRange r = bin().range();
    return static_cast<std::size_t>((r.end - r.begin) / 86400 +
                                    ((r.end - r.begin) % 86400 != 0 ? 1 : 0));
  }

  bool operator==(const ChunkKey&) const = default;
  auto operator<=>(const ChunkKey&) const = default;
};

struct ChunkKeyHash {
  [[nodiscard]] std::size_t operator()(const ChunkKey& k) const noexcept {
    std::uint64_t h = mix64(k.prefix);
    hash_combine(h, k.temporal);
    return static_cast<std::size_t>(h);
  }
};

/// Spatial precision of chunks holding Cells of spatial resolution
/// `cell_precision`: Cells coarser than the chunk precision are their own
/// chunks.
[[nodiscard]] constexpr int chunk_spatial_precision(int cell_precision,
                                                    int chunk_precision) noexcept {
  return cell_precision < chunk_precision ? cell_precision : chunk_precision;
}

/// The chunk a Cell belongs to.
[[nodiscard]] inline ChunkKey chunk_of(const CellKey& cell, int chunk_precision) {
  const std::string gh = cell.geohash_str();
  const auto prefix_len = static_cast<std::size_t>(
      chunk_spatial_precision(static_cast<int>(gh.size()), chunk_precision));
  return ChunkKey(std::string_view(gh).substr(0, prefix_len), cell.bin());
}

/// Lateral neighborhood of a chunk: up to 8 spatial neighbors at the same
/// bin plus the two temporal neighbors — the grey region of Fig 3 that
/// receives dispersed freshness.
[[nodiscard]] std::vector<ChunkKey> chunk_neighbors(const ChunkKey& key);

/// One hierarchically finer level whose chunks jointly cover `chunk`: the
/// candidate source of a §V-B roll-up synthesis.  `spatial` tells which
/// axis was refined (geohash children vs temporal-bin children) and hence
/// how a child Cell maps to its parent.
struct ChunkChildLevel {
  Resolution res;
  std::vector<ChunkKey> chunks;
  bool spatial = true;
};

/// The up-to-two child levels of a chunk at `res` (spatial first — the
/// common roll-up case).  Shared by QueryEngine::synthesize and the
/// GraphAuditor roll-up consistency check so the two can never disagree
/// about what "covered by children" means.
[[nodiscard]] std::vector<ChunkChildLevel> chunk_child_levels(
    const Resolution& res, const ChunkKey& chunk, int chunk_precision);

}  // namespace stash
