#include "core/edges.hpp"

namespace stash::edges {

std::vector<CellKey> hierarchical_parents(const CellKey& key) {
  std::vector<CellKey> out;
  const std::string gh = key.geohash_str();
  const TemporalBin bin = key.bin();
  const auto s_parent = geohash::parent(gh);
  const auto t_parent = bin.parent();
  if (s_parent) out.emplace_back(*s_parent, bin);
  if (t_parent) out.emplace_back(gh, *t_parent);
  if (s_parent && t_parent) out.emplace_back(*s_parent, *t_parent);
  return out;
}

std::vector<CellKey> spatial_children(const CellKey& key) {
  std::vector<CellKey> out;
  const std::string gh = key.geohash_str();
  if (gh.size() >= static_cast<std::size_t>(geohash::kMaxPrecision)) return out;
  const TemporalBin bin = key.bin();
  out.reserve(geohash::kChildrenPerCell);
  for (const auto& child : geohash::children(gh)) out.emplace_back(child, bin);
  return out;
}

std::vector<CellKey> temporal_children(const CellKey& key) {
  std::vector<CellKey> out;
  const std::string gh = key.geohash_str();
  for (const auto& child_bin : key.bin().children()) out.emplace_back(gh, child_bin);
  return out;
}

std::vector<CellKey> hierarchical_children(const CellKey& key) {
  std::vector<CellKey> out = spatial_children(key);
  const std::string gh = key.geohash_str();
  const auto t_children = key.bin().children();
  for (const auto& bin : t_children) out.emplace_back(gh, bin);
  // Both axes one step finer: each spatial child crossed with each
  // temporal child.
  if (gh.size() < static_cast<std::size_t>(geohash::kMaxPrecision)) {
    for (const auto& child_gh : geohash::children(gh))
      for (const auto& bin : t_children) out.emplace_back(child_gh, bin);
  }
  return out;
}

std::vector<CellKey> lateral_neighbors(const CellKey& key) {
  std::vector<CellKey> out;
  const std::string gh = key.geohash_str();
  const TemporalBin bin = key.bin();
  out.reserve(10);
  for (const auto& n : geohash::neighbors(gh)) out.emplace_back(n, bin);
  out.emplace_back(gh, bin.prev());
  out.emplace_back(gh, bin.next());
  return out;
}

}  // namespace stash::edges
