#include "core/query_engine.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <stdexcept>
#include <utility>

namespace stash {

EvalBreakdown& EvalBreakdown::operator+=(const EvalBreakdown& other) noexcept {
  chunks_total += other.chunks_total;
  chunks_from_cache += other.chunks_from_cache;
  chunks_synthesized += other.chunks_synthesized;
  chunks_scanned += other.chunks_scanned;
  chunks_missing += other.chunks_missing;
  cache_probes += other.cache_probes;
  cells_from_cache += other.cells_from_cache;
  cells_synthesized += other.cells_synthesized;
  cells_scanned += other.cells_scanned;
  synthesis_merges += other.synthesis_merges;
  scan += other.scan;
  return *this;
}

QueryEngine::QueryEngine(StashGraph& graph, const GalileoStore& store)
    : graph_(graph), store_(store) {}

namespace {

/// Appends `source` cells intersecting box × time into the response.
void filter_into(const CellSummaryMap& source, const BoundingBox& box,
                 const TimeRange& time, CellSummaryMap& out) {
  for (const auto& [key, summary] : source) {
    if (!key.bounds().intersects(box)) continue;
    if (!key.time_range().intersects(time)) continue;
    auto [it, inserted] = out.try_emplace(key, summary);
    if (!inserted) it->second.merge(summary);
  }
}

}  // namespace

std::optional<ChunkContribution> QueryEngine::synthesize(
    const Resolution& res, const ChunkKey& chunk,
    EvalBreakdown& breakdown) const {
  // Candidate child levels, spatial first (§V-B roll-up is the common
  // case).  The enumeration is shared with the GraphAuditor's roll-up
  // consistency check (chunk_child_levels) so they cannot drift.
  const auto candidates =
      chunk_child_levels(res, chunk, graph_.config().chunk_precision);

  for (const auto& candidate : candidates) {
    // Probe with early exit: the common case (child level absent) must cost
    // one probe, or the §VIII-C.2 "slightly more than basic" worst case
    // would balloon.
    bool all_complete = true;
    for (const auto& ck : candidate.chunks) {
      ++breakdown.cache_probes;
      if (!graph_.chunk_complete(candidate.res, ck)) {
        all_complete = false;
        break;
      }
    }
    if (!all_complete) continue;

    // Roll every child Cell up into its parent at (res).
    CellSummaryMap rolled;
    std::size_t merges = 0;
    for (const auto& child_chunk : candidate.chunks) {
      const auto* data = graph_.find_chunk(candidate.res, child_chunk);
      if (data == nullptr) continue;  // complete but empty region
      for (const auto& [child_key, summary] : data->cells) {
        CellKey parent_key =
            candidate.spatial
                ? CellKey(*geohash::parent(child_key.geohash_str()),
                          child_key.bin())
                : CellKey(child_key.geohash_str(), *child_key.bin().parent());
        auto [it, inserted] = rolled.try_emplace(parent_key, summary);
        if (!inserted) it->second.merge(summary);
        ++merges;
      }
    }
    ChunkContribution out;
    out.res = res;
    out.chunk = chunk;
    out.cells.assign(rolled.begin(), rolled.end());
    const std::int64_t first = chunk.first_day();
    for (std::size_t i = 0; i < chunk.day_count(); ++i)
      out.days.push_back(first + static_cast<std::int64_t>(i));
    breakdown.synthesis_merges += merges;
    return out;
  }
  return std::nullopt;
}

QueryEngine::PartitionPlan QueryEngine::plan_partition(
    std::string_view partition, const AggregationQuery& query) const {
  PartitionPlan plan;
  plan.clipped = query.area.intersection(geohash::decode(partition));
  if (!plan.clipped.valid() || !plan.clipped.intersects(query.area))
    return plan;
  plan.empty = false;

  const int chunk_prec = chunk_spatial_precision(
      query.res.spatial, graph_.config().chunk_precision);
  const auto prefixes = geohash::covering(plan.clipped, chunk_prec);
  const auto bins = temporal_covering(query.time, query.res.temporal);
  plan.chunks.reserve(prefixes.size() * bins.size());
  for (const auto& prefix : prefixes)
    for (const auto& bin : bins) plan.chunks.emplace_back(prefix, bin);
  return plan;
}

ChunkEvalResult QueryEngine::evaluate_chunk(std::string_view partition,
                                            const AggregationQuery& query,
                                            const BoundingBox& clipped,
                                            const ChunkKey& chunk,
                                            EvalMode mode,
                                            CellSummaryMap& out_cells,
                                            const CancelProbe* cancel) const {
  ChunkEvalResult result;
  if (cancel != nullptr && cancel->cancelled()) {
    result.cancelled = true;
    return result;
  }
  ++result.breakdown.chunks_total;

  if (mode != EvalMode::Basic) {
    ++result.breakdown.cache_probes;
    if (graph_.chunk_complete(query.res, chunk)) {
      result.breakdown.cells_from_cache += graph_.collect_chunk(
          query.res, chunk, clipped, query.time, out_cells);
      ++result.breakdown.chunks_from_cache;
      return result;
    }
    // Synthesis only for untouched chunks: merging a rolled-up full
    // bin over a partial one would double-count contributions.
    if (!graph_.chunk_known(query.res, chunk)) {
      if (auto synth = synthesize(query.res, chunk, result.breakdown)) {
        CellSummaryMap synth_map(synth->cells.begin(), synth->cells.end());
        filter_into(synth_map, clipped, query.time, out_cells);
        result.breakdown.cells_synthesized += synth->cells.size();
        ++result.breakdown.chunks_synthesized;
        result.fetched = std::move(*synth);
        return result;
      }
    }
    if (mode == EvalMode::CacheOnly) {
      ++result.breakdown.chunks_missing;
      return result;
    }
  }

  // Disk path: merge the resident partial contribution (if any) with a
  // scan of the missing days.
  CellSummaryMap local;
  std::vector<std::int64_t> days;
  if (mode == EvalMode::Basic) {
    const std::int64_t first = chunk.first_day();
    for (std::size_t i = 0; i < chunk.day_count(); ++i)
      days.push_back(first + static_cast<std::int64_t>(i));
  } else {
    result.breakdown.cells_from_cache +=
        graph_.collect_chunk(query.res, chunk, clipped, query.time, local);
    days = graph_.chunk_missing_days(query.res, chunk);
  }

  ChunkContribution contribution;
  contribution.res = query.res;
  contribution.chunk = chunk;
  CellSummaryMap scanned;
  const BoundingBox chunk_box = chunk.bounds();
  const TimeRange bin_range = chunk.bin().range();
  result.days_scanned = days;
  for (std::int64_t day : days) {
    // The between-cells cancellation point (DESIGN.md §14): one day's
    // scan is the smallest unit worth finishing — past a fired deadline,
    // every further day is work nobody will read.
    if (cancel != nullptr && cancel->cancelled()) {
      result.cancelled = true;
      return result;
    }
    const TimeRange day_range{day * 86400, (day + 1) * 86400};
    const TimeRange scan_range{std::max(day_range.begin, bin_range.begin),
                               std::min(day_range.end, bin_range.end)};
    ScanResult part =
        store_.scan_partition(partition, chunk_box, scan_range, query.res);
    result.breakdown.scan += part.stats;
    if (!part.corrupt_blocks.empty()) {
      // A block of this day failed verification: withhold the whole day
      // — from the response AND from the contribution, so the PLM never
      // marks a corrupt day complete — and surface the blocks so the
      // caller can flag the answer and schedule repair.
      result.corrupt_blocks.insert(result.corrupt_blocks.end(),
                                   part.corrupt_blocks.begin(),
                                   part.corrupt_blocks.end());
      continue;
    }
    contribution.days.push_back(day);
    for (auto& [key, summary] : part.cells) {
      auto [it, inserted] = scanned.try_emplace(key, std::move(summary));
      if (!inserted) it->second.merge(summary);
    }
  }
  result.breakdown.cells_scanned += scanned.size();
  ++result.breakdown.chunks_scanned;
  contribution.cells.assign(scanned.begin(), scanned.end());
  if (mode != EvalMode::Basic && !contribution.days.empty())
    result.fetched = std::move(contribution);

  // Response = resident partial + freshly scanned, filtered to query.
  for (const auto& [key, summary] : scanned) {
    auto [it, inserted] = local.try_emplace(key, summary);
    if (!inserted) it->second.merge(summary);
  }
  filter_into(local, clipped, query.time, out_cells);
  return result;
}

Evaluation QueryEngine::evaluate_partition(std::string_view partition,
                                           const AggregationQuery& query,
                                           EvalMode mode) const {
  if (!query.valid())
    throw std::invalid_argument("QueryEngine: invalid query");
  if (query.res.spatial < store_.partition_prefix_length())
    throw std::invalid_argument(
        "QueryEngine: spatial resolution must be >= the DHT partition prefix "
        "length (coarser Cells would span storage partitions)");

  Evaluation eval;
  const PartitionPlan plan = plan_partition(partition, query);
  if (plan.empty) return eval;

  // All chunks of one (partition, day) live in a single block file: disk
  // seeks are charged per unique day, not per chunk scanned.
  std::set<std::int64_t> days_scanned;

  for (const ChunkKey& chunk : plan.chunks) {
    eval.touched_chunks.push_back(chunk);
    ChunkEvalResult r =
        evaluate_chunk(partition, query, plan.clipped, chunk, mode, eval.cells);
    eval.breakdown += r.breakdown;
    if (r.fetched) eval.fetched.push_back(std::move(*r.fetched));
    eval.corrupt_blocks.insert(eval.corrupt_blocks.end(),
                               r.corrupt_blocks.begin(),
                               r.corrupt_blocks.end());
    days_scanned.insert(r.days_scanned.begin(), r.days_scanned.end());
  }
  eval.breakdown.scan.blocks_touched = days_scanned.size();
  return eval;
}

DegradedEvaluation QueryEngine::evaluate_degraded(
    std::string_view partition, const AggregationQuery& query) const {
  if (!query.valid())
    throw std::invalid_argument("QueryEngine: invalid query");
  const int min_spatial = store_.partition_prefix_length();
  if (query.res.spatial < min_spatial)
    throw std::invalid_argument(
        "QueryEngine: spatial resolution must be >= the DHT partition prefix "
        "length (coarser Cells would span storage partitions)");

  DegradedEvaluation out;
  out.served_res = query.res;
  const BoundingBox clipped =
      query.area.intersection(geohash::decode(partition));
  if (!clipped.valid() || !clipped.intersects(query.area)) {
    out.found = true;  // nothing of the query here: the empty answer is exact
    return out;
  }

  // BFS over the resolution hierarchy, nearest ancestors first, spatial
  // coarsening preferred among ties (parent_resolutions order).  Step 0 is
  // the requested level itself: a fully-resident exact region is served
  // as-is — degradation only happens when it must.
  std::vector<std::pair<Resolution, int>> frontier{{query.res, 0}};
  std::array<bool, kNumLevels> seen{};
  seen[static_cast<std::size_t>(level_index(query.res))] = true;
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const auto [res, steps] = frontier[i];

    const int chunk_prec =
        chunk_spatial_precision(res.spatial, graph_.config().chunk_precision);
    const auto prefixes = geohash::covering(clipped, chunk_prec);
    const auto bins = temporal_covering(query.time, res.temporal);
    std::vector<ChunkKey> chunks;
    chunks.reserve(prefixes.size() * bins.size());
    for (const auto& prefix : prefixes)
      for (const auto& bin : bins) chunks.emplace_back(prefix, bin);

    out.eval.breakdown.cache_probes += chunks.size();
    if (graph_.region_complete(res, chunks)) {
      for (const ChunkKey& chunk : chunks) {
        ++out.eval.breakdown.chunks_total;
        ++out.eval.breakdown.chunks_from_cache;
        out.eval.breakdown.cells_from_cache += graph_.collect_chunk(
            res, chunk, clipped, query.time, out.eval.cells);
      }
      out.served_res = res;
      out.coarsening_steps = steps;
      out.found = true;
      return out;
    }

    for (const Resolution& parent : parent_resolutions(res)) {
      if (parent.spatial < min_spatial) continue;
      const auto idx = static_cast<std::size_t>(level_index(parent));
      if (seen[idx]) continue;
      seen[idx] = true;
      frontier.emplace_back(parent, steps + 1);
    }
  }
  return out;  // found == false: nothing cached can answer at any ancestor
}

Evaluation QueryEngine::evaluate(const AggregationQuery& query,
                                 EvalMode mode) const {
  Evaluation total;
  for (const auto& partition :
       geohash::covering(query.area, store_.partition_prefix_length())) {
    Evaluation part = evaluate_partition(partition, query, mode);
    total.breakdown += part.breakdown;
    for (auto& [key, summary] : part.cells) {
      auto [it, inserted] = total.cells.try_emplace(key, std::move(summary));
      if (!inserted) it->second.merge(summary);
    }
    std::move(part.fetched.begin(), part.fetched.end(),
              std::back_inserter(total.fetched));
    std::move(part.touched_chunks.begin(), part.touched_chunks.end(),
              std::back_inserter(total.touched_chunks));
    std::move(part.corrupt_blocks.begin(), part.corrupt_blocks.end(),
              std::back_inserter(total.corrupt_blocks));
  }
  return total;
}

MaintenanceStats QueryEngine::absorb(const Evaluation& eval,
                                     const Resolution& res, sim::SimTime now) {
  MaintenanceStats stats;
  for (const auto& contribution : eval.fetched)
    stats.cells_absorbed += graph_.absorb(contribution, now);
  stats.freshness_updates = graph_.touch_region(res, eval.touched_chunks, now);
  stats.cells_evicted = graph_.evict_if_needed(now);
  return stats;
}

}  // namespace stash
