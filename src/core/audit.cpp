#include "core/audit.hpp"

#include <cmath>
#include <sstream>
#include <utility>

namespace stash {

std::string_view to_string(AuditViolationKind kind) noexcept {
  switch (kind) {
    case AuditViolationKind::PlmChunkMissing: return "plm-chunk-missing";
    case AuditViolationKind::ChunkPlmMissing: return "chunk-plm-missing";
    case AuditViolationKind::PlmBitmapShape: return "plm-bitmap-shape";
    case AuditViolationKind::CellOutsideChunk: return "cell-outside-chunk";
    case AuditViolationKind::CellKeyMalformed: return "cell-key-malformed";
    case AuditViolationKind::SummaryInvalid: return "summary-invalid";
    case AuditViolationKind::CellCountDrift: return "cell-count-drift";
    case AuditViolationKind::FreshnessInvalid: return "freshness-invalid";
    case AuditViolationKind::RollupMismatch: return "rollup-mismatch";
    case AuditViolationKind::RoutingMalformed: return "routing-malformed";
    case AuditViolationKind::RingInconsistent: return "ring-inconsistent";
  }
  return "?";
}

std::size_t AuditReport::count(AuditViolationKind kind) const noexcept {
  std::size_t n = 0;
  for (const auto& v : violations)
    if (v.kind == kind) ++n;
  return n;
}

void AuditReport::merge(AuditReport&& other) {
  for (auto& v : other.violations) violations.push_back(std::move(v));
  chunks_checked += other.chunks_checked;
  cells_checked += other.cells_checked;
  rollups_checked += other.rollups_checked;
  routes_checked += other.routes_checked;
  truncated = truncated || other.truncated;
}

std::string AuditReport::to_string() const {
  std::ostringstream out;
  out << (ok() ? "audit OK" : "audit FAILED") << ": " << violations.size()
      << " violation(s) over " << chunks_checked << " chunks, "
      << cells_checked << " cells, " << rollups_checked << " rollups, "
      << routes_checked << " routes" << (truncated ? " [truncated]" : "");
  for (const auto& v : violations)
    out << "\n  [" << stash::to_string(v.kind) << "] " << v.detail;
  return out.str();
}

bool GraphAuditor::add(AuditReport& report, AuditViolationKind kind,
                       std::string detail) const {
  if (report.violations.size() >= options_.max_violations) {
    report.truncated = true;
    return false;
  }
  report.violations.push_back({kind, std::move(detail)});
  return true;
}

namespace {

/// "s6/Day 9q8y@2015-02-02" — where a violation lives.
std::string where(int level, const ChunkKey& chunk) {
  std::string out = resolution_of_level(level).to_string();
  out.push_back(' ');
  out += chunk.label();
  return out;
}

bool summary_valid(const Summary& summary) {
  const std::uint64_t count = summary.observation_count();
  for (const auto& attr : summary.attributes()) {
    if (attr.count != count) return false;  // attribute counts must agree
    if (attr.count == 0) continue;
    if (!std::isfinite(attr.min) || !std::isfinite(attr.max) ||
        !std::isfinite(attr.sum) || !std::isfinite(attr.sum_sq))
      return false;
    if (attr.min > attr.max) return false;
    if (attr.sum_sq < 0.0) return false;
  }
  return true;
}

}  // namespace

void GraphAuditor::check_chunks(const StashGraph& graph,
                                AuditReport& report) const {
  const int chunk_precision = graph.config().chunk_precision;
  std::size_t counted_cells = 0;

  for (int lvl = 0; lvl < kNumLevels; ++lvl) {
    const Resolution res = resolution_of_level(lvl);

    // PLM -> graph: every "cached" bitmap belongs to a live chunk of the
    // right shape, with at least one contribution recorded.
    graph.plm().for_each_chunk(lvl, [&](const ChunkKey& chunk,
                                        const DynamicBitset& bits) {
      if (report.truncated) return;
      if (graph.find_chunk(res, chunk) == nullptr)
        add(report, AuditViolationKind::PlmChunkMissing,
            where(lvl, chunk) + ": PLM tracks a chunk with no resident data");
      if (bits.size() != chunk.day_count() || bits.none())
        add(report, AuditViolationKind::PlmBitmapShape,
            where(lvl, chunk) + ": bitmap has " + std::to_string(bits.size()) +
                " bits (" + std::to_string(bits.count()) + " set), chunk spans " +
                std::to_string(chunk.day_count()) + " day(s)");
    });

    // graph -> PLM, plus per-cell and freshness checks.
    graph.for_each_chunk(res, [&](const ChunkKey& chunk,
                                  const StashGraph::ChunkData& data) {
      if (report.truncated) return;
      ++report.chunks_checked;
      counted_cells += data.cells.size();

      if (!graph.plm().is_known(lvl, chunk))
        add(report, AuditViolationKind::ChunkPlmMissing,
            where(lvl, chunk) + ": resident chunk unknown to the PLM");

      if (!std::isfinite(data.freshness.value) || data.freshness.value < 0.0 ||
          data.freshness.last_update < 0 ||
          (options_.now && data.freshness.last_update > *options_.now))
        add(report, AuditViolationKind::FreshnessInvalid,
            where(lvl, chunk) + ": freshness value " +
                std::to_string(data.freshness.value) + " last_update " +
                std::to_string(data.freshness.last_update));

      for (const auto& [key, summary] : data.cells) {
        if (report.truncated) break;
        ++report.cells_checked;
        // A malformed key would throw from geohash/bin unpacking below.
        try {
          (void)key.geohash_str();
          (void)key.bin();
        } catch (const std::exception& e) {
          add(report, AuditViolationKind::CellKeyMalformed,
              where(lvl, chunk) + ": cell key does not unpack: " + e.what());
          continue;
        }
        if (level_index(key.resolution()) != lvl ||
            chunk_of(key, chunk_precision) != chunk)
          add(report, AuditViolationKind::CellOutsideChunk,
              where(lvl, chunk) + ": cell " + key.label() +
                  " belongs to a different chunk or level");
        if (!summary_valid(summary))
          add(report, AuditViolationKind::SummaryInvalid,
              where(lvl, chunk) + ": cell " + key.label() +
                  " has inconsistent or non-finite statistics");
      }
    });
    if (report.truncated) return;
  }

  if (!report.truncated && counted_cells != graph.total_cells())
    add(report, AuditViolationKind::CellCountDrift,
        "graph reports " + std::to_string(graph.total_cells()) +
            " cells, levels hold " + std::to_string(counted_cells));
}

void GraphAuditor::check_rollups(const StashGraph& graph,
                                 AuditReport& report) const {
  const int chunk_precision = graph.config().chunk_precision;
  for (int lvl = 0; lvl < kNumLevels && !report.truncated; ++lvl) {
    const Resolution res = resolution_of_level(lvl);
    graph.for_each_chunk(res, [&](const ChunkKey& chunk,
                                  const StashGraph::ChunkData& data) {
      if (report.truncated) return;
      if (!graph.chunk_complete(res, chunk)) return;

      for (const auto& candidate :
           chunk_child_levels(res, chunk, chunk_precision)) {
        bool all_complete = true;
        for (const auto& child : candidate.chunks)
          if (!graph.chunk_complete(candidate.res, child)) {
            all_complete = false;
            break;
          }
        if (!all_complete) continue;

        // Both the parent and a covering child level are complete: §V-B
        // exactness says rolling the children up must reproduce the parent.
        ++report.rollups_checked;
        CellSummaryMap rolled;
        for (const auto& child_chunk : candidate.chunks) {
          const auto* child = graph.find_chunk(candidate.res, child_chunk);
          if (child == nullptr) continue;  // complete but empty region
          for (const auto& [child_key, summary] : child->cells) {
            CellKey parent_key =
                candidate.spatial
                    ? CellKey(*geohash::parent(child_key.geohash_str()),
                              child_key.bin())
                    : CellKey(child_key.geohash_str(),
                              *child_key.bin().parent());
            auto [it, inserted] = rolled.try_emplace(parent_key, summary);
            if (!inserted) it->second.merge(summary);
          }
        }

        if (rolled.size() != data.cells.size()) {
          add(report, AuditViolationKind::RollupMismatch,
              where(lvl, chunk) + ": parent holds " +
                  std::to_string(data.cells.size()) + " cells, roll-up from " +
                  candidate.res.to_string() + " yields " +
                  std::to_string(rolled.size()));
          continue;
        }
        for (const auto& [key, summary] : data.cells) {
          const auto it = rolled.find(key);
          if (it == rolled.end()) {
            if (!add(report, AuditViolationKind::RollupMismatch,
                     where(lvl, chunk) + ": cell " + key.label() +
                         " absent from the " + candidate.res.to_string() +
                         " roll-up"))
              return;
            continue;
          }
          if (!summary.approx_equals(it->second, options_.rollup_rel_tol))
            if (!add(report, AuditViolationKind::RollupMismatch,
                     where(lvl, chunk) + ": cell " + key.label() +
                         " disagrees with the " + candidate.res.to_string() +
                         " roll-up"))
              return;
        }
      }
    });
  }
}

AuditReport GraphAuditor::audit(const StashGraph& graph) const {
  AuditReport report;
  check_chunks(graph, report);
  if (options_.check_rollup && !report.truncated)
    check_rollups(graph, report);
  return report;
}

AuditReport GraphAuditor::audit_routing(const RoutingTable& routing,
                                        std::uint32_t num_nodes,
                                        std::uint32_t self) const {
  AuditReport report;
  routing.for_each_entry([&](int level, const ChunkKey& chunk,
                             std::uint32_t helper, sim::SimTime replicated_at) {
    if (report.truncated) return;
    ++report.routes_checked;
    if (level < 0 || level >= kNumLevels) {
      add(report, AuditViolationKind::RoutingMalformed,
          "routing entry with out-of-range level " + std::to_string(level));
      return;
    }
    try {
      (void)chunk.prefix_str();
      (void)chunk.bin();
    } catch (const std::exception& e) {
      add(report, AuditViolationKind::RoutingMalformed,
          "routing entry with malformed chunk key: " + std::string(e.what()));
      return;
    }
    if (helper >= num_nodes)
      add(report, AuditViolationKind::RoutingMalformed,
          where(level, chunk) + ": helper " + std::to_string(helper) +
              " outside the cluster (" + std::to_string(num_nodes) + " nodes)");
    else if (helper == self)
      add(report, AuditViolationKind::RoutingMalformed,
          where(level, chunk) + ": entry reroutes to the owner itself");
    if (replicated_at < 0)
      add(report, AuditViolationKind::RoutingMalformed,
          where(level, chunk) + ": negative replication timestamp");
  });
  return report;
}

AuditReport GraphAuditor::audit_ring(const RingView& ring,
                                     std::uint32_t total_slots) const {
  AuditReport report;
  if (ring.members.empty()) {
    add(report, AuditViolationKind::RingInconsistent,
        "epoch " + std::to_string(ring.epoch) + ": empty member set");
    return report;
  }
  for (std::size_t i = 0; i < ring.members.size(); ++i) {
    if (ring.members[i] >= total_slots)
      add(report, AuditViolationKind::RingInconsistent,
          "epoch " + std::to_string(ring.epoch) + ": member " +
              std::to_string(ring.members[i]) + " outside the " +
              std::to_string(total_slots) + " addressable slots");
    if (i > 0 && ring.members[i] <= ring.members[i - 1])
      add(report, AuditViolationKind::RingInconsistent,
          "epoch " + std::to_string(ring.epoch) +
              ": members not strictly sorted at index " + std::to_string(i) +
              " (" + std::to_string(ring.members[i - 1]) + " then " +
              std::to_string(ring.members[i]) + ")");
    if (report.truncated) return report;
  }
  return report;
}

}  // namespace stash
