#include "core/clique.hpp"

#include <algorithm>
#include <set>

namespace stash {
namespace {

/// Chunks of the child level covering the same region as `chunk`.
std::vector<ChunkKey> child_level_chunks(const ChunkKey& chunk,
                                         const Resolution& res,
                                         const Resolution& child_res,
                                         int chunk_precision) {
  std::vector<ChunkKey> out;
  const std::string prefix = chunk.prefix_str();
  const TemporalBin bin = chunk.bin();

  std::vector<std::string> prefixes;
  if (child_res.spatial > res.spatial &&
      static_cast<int>(prefix.size()) < chunk_precision) {
    prefixes = geohash::children(prefix);
  } else {
    prefixes.push_back(prefix);
  }
  std::vector<TemporalBin> bins;
  if (child_res.temporal != res.temporal) {
    bins = bin.children();
  } else {
    bins.push_back(bin);
  }
  out.reserve(prefixes.size() * bins.size());
  for (const auto& p : prefixes)
    for (const auto& b : bins) out.emplace_back(p, b);
  return out;
}

}  // namespace

Clique CliqueSelector::build(const Resolution& res, const ChunkKey& root,
                             int depth, sim::SimTime now) const {
  Clique clique;
  clique.root_res = res;
  clique.root = root;

  // BFS over hierarchical refinements, bounded by depth.
  struct Frontier {
    Resolution res;
    ChunkKey chunk;
  };
  std::vector<Frontier> frontier{{res, root}};
  std::set<std::pair<int, ChunkKey>> seen{{level_index(res), root}};
  const int chunk_prec = graph_.config().chunk_precision;

  for (int step = 0; step < depth; ++step) {
    std::vector<Frontier> next;
    for (const auto& f : frontier) {
      const auto* data = graph_.find_chunk(f.res, f.chunk);
      if (data != nullptr) {
        clique.members.push_back({f.res, f.chunk, data->cells.size()});
        clique.cell_count += data->cells.size();
        clique.freshness +=
            data->freshness.at(now, graph_.config().freshness_half_life);
      }
      if (step + 1 == depth) continue;
      for (const auto& child_res : child_resolutions(f.res)) {
        for (const auto& child :
             child_level_chunks(f.chunk, f.res, child_res, chunk_prec)) {
          if (!seen.insert({level_index(child_res), child}).second) continue;
          // Only descend into resident chunks: absent regions contribute
          // nothing and exploring them would blow the fan-out up.
          if (graph_.find_chunk(child_res, child) != nullptr)
            next.push_back({child_res, child});
        }
      }
    }
    frontier = std::move(next);
  }
  return clique;
}

std::vector<Clique> CliqueSelector::select_top(sim::SimTime now,
                                               std::size_t max_cells,
                                               std::size_t max_cliques,
                                               int depth) const {
  // Candidate roots: every resident chunk, scored by its own freshness
  // first (cheap), then expanded into full Cliques greedily.
  struct Candidate {
    double score;
    Resolution res;
    ChunkKey chunk;
  };
  std::vector<Candidate> candidates;
  for (int lvl = 0; lvl < kNumLevels; ++lvl) {
    const Resolution res = resolution_of_level(lvl);
    graph_.for_each_chunk(res, [&](const ChunkKey& key,
                                   const StashGraph::ChunkData& data) {
      const double f = data.freshness.at(now, graph_.config().freshness_half_life);
      if (f > 0.0) candidates.push_back({f, res, key});
    });
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              if (level_index(a.res) != level_index(b.res))
                return level_index(a.res) < level_index(b.res);
              return a.chunk < b.chunk;
            });

  std::vector<Clique> selected;
  std::set<std::pair<int, ChunkKey>> covered;
  std::size_t total_cells = 0;
  for (const auto& candidate : candidates) {
    if (selected.size() >= max_cliques) break;
    if (covered.contains({level_index(candidate.res), candidate.chunk})) continue;
    Clique clique = build(candidate.res, candidate.chunk, depth, now);
    // Zero-cell cliques are kept: a known-empty chunk is cacheable state
    // (its residency lets the helper answer "no data here" without disk).
    if (clique.members.empty()) continue;
    if (total_cells + clique.cell_count > max_cells) continue;
    for (const auto& member : clique.members)
      covered.insert({level_index(member.res), member.chunk});
    total_cells += clique.cell_count;
    selected.push_back(std::move(clique));
  }
  return selected;
}

namespace {

/// Appends (res, chunk) as a contribution iff the graph holds it complete.
void append_complete_chunk(const StashGraph& graph, const Resolution& res,
                           const ChunkKey& chunk,
                           std::vector<ChunkContribution>& payload) {
  if (!graph.chunk_complete(res, chunk)) return;
  const auto* data = graph.find_chunk(res, chunk);
  if (data == nullptr) return;
  ChunkContribution c;
  c.res = res;
  c.chunk = chunk;
  c.cells.assign(data->cells.begin(), data->cells.end());
  const std::int64_t first = chunk.first_day();
  for (std::size_t i = 0; i < chunk.day_count(); ++i)
    c.days.push_back(first + static_cast<std::int64_t>(i));
  payload.push_back(std::move(c));
}

}  // namespace

std::vector<ChunkContribution> clique_payload(const StashGraph& graph,
                                              const Clique& clique) {
  std::vector<ChunkContribution> payload;
  payload.reserve(clique.members.size());
  for (const auto& member : clique.members)
    append_complete_chunk(graph, member.res, member.chunk, payload);
  return payload;
}

std::vector<ChunkContribution> chunk_payload(
    const StashGraph& graph,
    const std::vector<std::pair<Resolution, ChunkKey>>& chunks) {
  std::vector<ChunkContribution> payload;
  payload.reserve(chunks.size());
  for (const auto& [res, chunk] : chunks)
    append_complete_chunk(graph, res, chunk, payload);
  return payload;
}

}  // namespace stash
