// The STASH graph: per-level in-memory store of aggregated Cells.
//
// G_STASH = (V, {E_H, E_L}) from §IV: vertices are Cells grouped by their
// spatiotemporal resolution into levels (§IV-C), hierarchical and lateral
// edges are derived on demand (core/edges.hpp).  Each level's Cells are
// grouped into chunks (core/chunk.hpp) — the unit of residency tracking
// (PLM), freshness bookkeeping (§V-C) and replication (§VII).
//
// One StashGraph instance is a single node's shard of the distributed
// graph; a helper node additionally holds a second, "guest" instance for
// replicated Cliques (§VII-A).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/summary.hpp"
#include "core/config.hpp"
#include "core/freshness.hpp"
#include "core/plm.hpp"
#include "storage/galileo_store.hpp"

namespace stash {

/// One batch of fully-aggregated Cells for a chunk, covering `days` of its
/// bin — the unit StashGraph ingests (from a disk scan, a roll-up
/// synthesis, or a replication transfer).
struct ChunkContribution {
  Resolution res;
  ChunkKey chunk;
  std::vector<std::pair<CellKey, Summary>> cells;
  std::vector<std::int64_t> days;
};

class StashGraph {
 public:
  struct ChunkData {
    std::unordered_map<CellKey, Summary, CellKeyHash> cells;
    Freshness freshness;
  };

  /// Cumulative lifetime counters over every mutation — the per-node feed
  /// for the cluster's MetricsRegistry (obs/metrics.hpp).  Unlike
  /// total_cells(), these never decrease and survive clear().
  struct Stats {
    std::uint64_t contributions_absorbed = 0;  ///< absorb() batches accepted
    std::uint64_t contributions_rejected = 0;  ///< idempotence-guard rejects
    std::uint64_t cells_absorbed = 0;          ///< cells merged or inserted
    std::uint64_t freshness_touches = 0;       ///< touch_region() updates
    std::uint64_t eviction_passes = 0;         ///< evict_to() passes that dropped chunks
    std::uint64_t cells_evicted = 0;           ///< via evict_to()/evict_if_needed()
    std::uint64_t cells_purged = 0;            ///< via purge_older_than()
    std::uint64_t chunks_invalidated = 0;      ///< via invalidate_block()
  };

  explicit StashGraph(StashConfig config = {});

  [[nodiscard]] const StashConfig& config() const noexcept { return config_; }
  [[nodiscard]] const PrecisionLevelMap& plm() const noexcept { return plm_; }

  // --- residency (PLM consultation, §IV-D) ---
  [[nodiscard]] bool chunk_complete(const Resolution& res,
                                    const ChunkKey& chunk) const;
  [[nodiscard]] bool chunk_known(const Resolution& res, const ChunkKey& chunk) const;
  /// True when every chunk of a covering is resident and complete — the
  /// gate for serving a degraded answer from this level.
  [[nodiscard]] bool region_complete(const Resolution& res,
                                     const std::vector<ChunkKey>& chunks) const;
  [[nodiscard]] std::vector<std::int64_t> chunk_missing_days(
      const Resolution& res, const ChunkKey& chunk) const;

  // --- reads ---
  /// Appends the chunk's resident Cells whose bounds intersect box × time
  /// into `out`; returns the number appended.
  std::size_t collect_chunk(const Resolution& res, const ChunkKey& chunk,
                            const BoundingBox& box, const TimeRange& time,
                            CellSummaryMap& out) const;

  [[nodiscard]] const ChunkData* find_chunk(const Resolution& res,
                                            const ChunkKey& chunk) const;
  [[nodiscard]] const Summary* find_cell(const CellKey& key) const;

  // --- integrity ---
  /// Content-covering digest of one chunk: the PLM bitmap digest mixed with
  /// an order-independent checksum of every resident Cell (key + summary
  /// values), all on the shared integrity checksum (common/checksum.hpp).
  /// 0 for an unknown chunk (matching PrecisionLevelMap::bitmap_hash).
  /// This is the anti-entropy comparison unit: two replicas with identical
  /// coverage but diverged or rotted content hash differently, so a digest
  /// mismatch means "re-pull", never "trust the bitmap".
  [[nodiscard]] std::uint64_t chunk_digest(const Resolution& res,
                                           const ChunkKey& chunk) const;

  /// Drops one resident chunk entirely (Cells + PLM entry) — the
  /// quarantine action for a replica whose digest proves it diverged or
  /// rotted.  Returns the number of Cells dropped.
  std::size_t drop_chunk(const Resolution& res, const ChunkKey& chunk);

  // --- writes ---
  /// Ingests a contribution: merges its Cells and marks its days in the
  /// PLM.  Days already contributed are rejected (idempotence guard) —
  /// returns 0 and changes nothing.  Otherwise returns Cells touched.
  std::size_t absorb(const ChunkContribution& contribution, sim::SimTime now);

  // --- freshness (§V-C) ---
  /// Records an access to `accessed` chunks of one level: each gets f_inc;
  /// resident chunks in their immediate spatiotemporal neighborhood get
  /// dispersion_fraction * f_inc (Fig 3).  Returns freshness updates made.
  std::size_t touch_region(const Resolution& res,
                           const std::vector<ChunkKey>& accessed,
                           sim::SimTime now);

  [[nodiscard]] double chunk_freshness(const Resolution& res, const ChunkKey& chunk,
                                       sim::SimTime now) const;

  // --- capacity & eviction (§V-C.2) ---
  [[nodiscard]] std::size_t total_cells() const noexcept { return total_cells_; }
  [[nodiscard]] std::size_t total_chunks() const noexcept;
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// If over max_cells, evicts lowest-freshness chunks until at or below
  /// the safe limit.  Returns the number of Cells evicted.
  std::size_t evict_if_needed(sim::SimTime now);
  /// Unconditionally evicts lowest-freshness chunks down to target_cells.
  std::size_t evict_to(std::size_t target_cells, sim::SimTime now);

  /// Drops every chunk whose last access is older than `ttl` (guest-graph
  /// purge, §VII-D).  Returns Cells dropped.
  std::size_t purge_older_than(sim::SimTime now, sim::SimTime ttl);

  /// Real-time update invalidation: drops every chunk the block contributed
  /// to (summaries are not subtractable), so stale data is recomputed on
  /// next access.  Returns the number of chunks dropped.
  std::size_t invalidate_block(std::string_view partition, std::int64_t day);

  /// Iterates all resident chunks of one level.
  template <typename Fn>
  void for_each_chunk(const Resolution& res, Fn&& fn) const {
    for (const auto& [key, data] : level_of(res)) fn(key, data);
  }

  void clear();

 private:
  using LevelMap = std::unordered_map<ChunkKey, ChunkData, ChunkKeyHash>;

  /// Auditor unit tests corrupt private state through this peer to prove
  /// each violation class is detected; nothing else may define it.
  friend struct StashGraphTestPeer;

  [[nodiscard]] LevelMap& level_of(const Resolution& res);
  [[nodiscard]] const LevelMap& level_of(const Resolution& res) const;
  void erase_chunk(int level_idx, const ChunkKey& chunk);
  /// No-op unless compiled with STASH_AUDIT: runs the GraphAuditor after a
  /// mutation and throws std::logic_error on any violation.
  void self_audit(const char* op) const;

  StashConfig config_;
  std::array<LevelMap, kNumLevels> levels_;
  PrecisionLevelMap plm_;
  std::size_t total_cells_ = 0;
  Stats stats_;
};

}  // namespace stash
