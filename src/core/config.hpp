// STASH configuration knobs.
//
// Every threshold the paper calls "configurable" lives here with the value
// used in its evaluation where one is stated (§VII, §VIII), or a sensible
// default otherwise.
#pragma once

#include <cstddef>

#include "sim/clock.hpp"

namespace stash {

struct StashConfig {
  // --- data layout ---
  /// Geohash precision of a *chunk*, the granularity at which missing data
  /// is fetched from disk and residency is tracked in the PLM ("STASH
  /// consults the PLM to identify and retrieve missing chunks", §IV-D).
  /// Cells at spatial resolution >= this nest inside chunks; coarser levels
  /// use the cell's own precision.
  int chunk_precision = 4;

  // --- cell replacement (§V-C) ---
  /// Threshold for the total number of Cells allowed in STASH
  /// ("configurable and limited", §V-C).
  std::size_t max_cells = 2'000'000;
  /// Eviction drains to this fraction of max_cells ("till the capacity goes
  /// below a safe limit").
  double safe_limit_fraction = 0.8;
  /// Freshness increment applied to an accessed region (f_inc, §V-C.2).
  double freshness_increment = 1.0;
  /// Fraction of f_inc dispersed to the immediate spatiotemporal
  /// neighborhood of an accessed region.
  double dispersion_fraction = 0.25;
  /// Half-life of the freshness time-decay function, in virtual time.
  sim::SimTime freshness_half_life = 60 * sim::kSecond;

  // --- hotspot autoscaling (§VII) ---
  /// Pending-request queue length that marks a node hotspotted
  /// (§VIII-E: "configured to initiate Clique handoff with pending
  /// requests of over 100").
  std::size_t hotspot_queue_threshold = 100;
  /// Clique depth: a Clique of depth d spans the root Cells plus d-1
  /// descendant levels (§VII-B.2).
  int clique_depth = 2;
  /// Maximum number of Cells replicated per handoff (N in §VII-B.2).
  std::size_t max_replicated_cells = 50'000;
  /// Maximum Cliques per handoff (K in §VII-B.2).  Must be large enough to
  /// cover a hot region's chunk footprint: rerouting requires *full*
  /// replication of a query's region (§VII-C).
  std::size_t max_cliques_per_handoff = 64;
  /// Probability of rerouting a fully-replicated query to its helper node
  /// (§VII-C: "probabilistically rerouted").
  double reroute_probability = 0.5;
  /// Cooldown after a handoff before the node may hand off again (§VII-D).
  sim::SimTime hotspot_cooldown = 30 * sim::kSecond;
  /// Guest Cliques unused for this long are purged (§VII-D).
  sim::SimTime guest_ttl = 120 * sim::kSecond;
  /// Routing-table entries older than this are purged (§VII-D).
  sim::SimTime routing_ttl = 120 * sim::kSecond;
  /// A helper node refuses Distress Requests while its guest graph holds
  /// more cells than this.
  std::size_t guest_capacity_cells = 500'000;

  [[nodiscard]] std::size_t safe_limit() const noexcept {
    return static_cast<std::size_t>(static_cast<double>(max_cells) *
                                    safe_limit_fraction);
  }
};

}  // namespace stash
