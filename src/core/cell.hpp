// The STASH Cell: minimum unit of data storage (paper §IV-A, Table I).
//
// A Cell's three components per Table I:
//   (a) spatiotemporal labels      -> CellKey (geohash + temporal bin)
//   (b) aggregated summary stats   -> Summary (count/min/max/sum/sum_sq
//                                     per attribute)
//   (c) edge information           -> *derived*, not stored: §IV-D replaces
//       per-Cell neighbor pointers with "composable vertex discovery
//       schemes" (see core/edges.hpp), which is why a Cell here is only a
//       key + payload.
#pragma once

#include "common/summary.hpp"
#include "geo/cell_key.hpp"

namespace stash {

struct Cell {
  CellKey key;
  Summary summary;

  Cell() = default;
  Cell(CellKey k, Summary s) : key(k), summary(std::move(s)) {}

  /// In-memory footprint for capacity accounting.
  [[nodiscard]] std::size_t byte_size() const noexcept {
    return sizeof(CellKey) + summary.byte_size();
  }
};

}  // namespace stash
