// Freshness: the Cell-replacement metric of §V-C.1.
//
// "Freshness is calculated as the product of the number of accesses to a
// Cell (updated every time it gets accessed), and a time decay function.
// Hence, both frequency and recency of access are contributors."
//
// We store (value, last_update) and decay lazily: an entry's effective
// freshness at time `now` is value * 2^-((now - last_update)/half_life).
// Touching folds the decay in and adds the increment, so repeated access
// grows the score (frequency) while idleness shrinks it (recency).
#pragma once

#include <cmath>

#include "sim/clock.hpp"

namespace stash {

struct Freshness {
  double value = 0.0;
  sim::SimTime last_update = 0;

  /// Effective score at `now` under exponential decay.  Elapsed time is
  /// clamped at zero: after a clock regression (SimServer epoch reset, node
  /// restart) `now` can be earlier than `last_update`, and a negative dt
  /// would *amplify* the score by 2^(dt/h) — letting stale entries outrank
  /// everything at eviction time instead of decaying.
  [[nodiscard]] double at(sim::SimTime now, sim::SimTime half_life) const noexcept {
    if (value == 0.0) return 0.0;
    if (now <= last_update) return value;
    const double dt = static_cast<double>(now - last_update);
    return value * std::exp2(-dt / static_cast<double>(half_life));
  }

  /// Records an access worth `increment` at `now`.
  void touch(double increment, sim::SimTime now, sim::SimTime half_life) noexcept {
    value = at(now, half_life) + increment;
    last_update = now;
  }
};

}  // namespace stash
