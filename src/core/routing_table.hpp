// Routing table for replicated Cliques (paper §VII-B.5, §VII-C).
//
// "The hotspotted node maintains a routing table of Cliques that are
// replicated at helper nodes, along with a bitmap of the actual Cells
// contained in the Clique. ... a user query is first checked against
// entries in the routing table and if the spatiotemporal region of the
// user query is found to be fully replicated at another helper node, the
// user request is probabilistically rerouted."
//
// We key entries by (level, chunk) — the granularity at which queries are
// planned — so "fully replicated" is an exact all-chunks-present check.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/chunk.hpp"
#include "dht/partitioner.hpp"
#include "geo/resolution.hpp"
#include "sim/clock.hpp"

namespace stash {

class RoutingTable {
 public:
  /// Registers a replicated chunk at `helper` (on Replication Response).
  void add(const Resolution& res, const ChunkKey& chunk, NodeId helper,
           sim::SimTime now);

  /// Helper node holding *all* of the query's chunks, if one exists and no
  /// entry is older than `ttl`.  Entries from different helpers do not
  /// combine: a reroute targets a single node.
  [[nodiscard]] std::optional<NodeId> lookup(const Resolution& res,
                                             const std::vector<ChunkKey>& chunks,
                                             sim::SimTime now,
                                             sim::SimTime ttl) const;

  /// Drops entries older than `ttl` ("stale routing-table entries also get
  /// purged ... signifying the retreat of hotspot", §VII-D).  Returns the
  /// number purged.
  std::size_t purge(sim::SimTime now, sim::SimTime ttl);

  /// Drops every entry pointing at `helper` (e.g. helper purged its guests,
  /// or a timeout marked it suspected-dead).
  std::size_t drop_helper(NodeId helper);

  /// Drops everything (node crash: routing state is volatile).
  void clear() noexcept { entries_.clear(); }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Iterates every entry as fn(level, chunk, helper, replicated_at) — for
  /// diagnostics and the GraphAuditor's routing checks.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const auto& [key, entry] : entries_)
      fn(key.level, key.chunk, entry.helper, entry.replicated_at);
  }

 private:
  struct Key {
    int level;
    ChunkKey chunk;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = ChunkKeyHash{}(k.chunk);
      hash_combine(h, static_cast<std::uint64_t>(k.level));
      return static_cast<std::size_t>(h);
    }
  };
  struct Entry {
    NodeId helper;
    sim::SimTime replicated_at;
  };

  std::unordered_map<Key, Entry, KeyHash> entries_;
};

}  // namespace stash
