// Structural-invariant auditor for the STASH graph (§IV-D, §V-B, §VII).
//
// STASH's correctness contract is that the cache answers hierarchical
// aggregates *exactly* as the backing store would — which only holds while
// the PLM bitmaps, per-level cell maps, roll-up synthesis inputs, and
// routing state never drift from each other.  The GraphAuditor walks a
// StashGraph (and, in the cluster, each node's routing table) and checks
// every machine-verifiable invariant, returning a structured violation
// report instead of asserting, so tests, stashctl --audit, and the
// STASH_AUDIT self-check all share one implementation.
//
// Audited invariants:
//   PlmChunkMissing   every PLM "cached" bit belongs to a live chunk
//   ChunkPlmMissing   every live chunk is known to the PLM
//   PlmBitmapShape    a chunk's day bitmap has day_count() bits, >= 1 set
//   CellOutsideChunk  each Cell maps (chunk_of / level_index) to its owner
//   CellKeyMalformed  Cell labels unpack to valid geohash + temporal bin
//   SummaryInvalid    summary stats are finite, min <= max, counts agree
//   CellCountDrift    the graph's total_cells() equals the per-chunk sum
//   FreshnessInvalid  freshness values finite and >= 0, last_update <= now
//   RollupMismatch    a complete parent chunk agrees with the roll-up of a
//                     fully-resident complete child level (§V-B exactness)
//   RoutingMalformed  routing entries have valid levels/chunks/helper ids
//   RingInconsistent  membership ring malformed (empty, duplicate or
//                     out-of-range members) or a rebalance handoff record
//                     disagrees with the installed epoch's ownership
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "core/routing_table.hpp"
#include "dht/partitioner.hpp"

namespace stash {

enum class AuditViolationKind {
  PlmChunkMissing,
  ChunkPlmMissing,
  PlmBitmapShape,
  CellOutsideChunk,
  CellKeyMalformed,
  SummaryInvalid,
  CellCountDrift,
  FreshnessInvalid,
  RollupMismatch,
  RoutingMalformed,
  RingInconsistent,
};

[[nodiscard]] std::string_view to_string(AuditViolationKind kind) noexcept;

struct AuditViolation {
  AuditViolationKind kind;
  std::string detail;  // human-readable: level, chunk label, what disagreed
};

struct AuditReport {
  std::vector<AuditViolation> violations;
  std::size_t chunks_checked = 0;
  std::size_t cells_checked = 0;
  std::size_t rollups_checked = 0;
  std::size_t routes_checked = 0;
  bool truncated = false;  // hit AuditOptions::max_violations and stopped

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] std::size_t count(AuditViolationKind kind) const noexcept;
  void merge(AuditReport&& other);

  /// Multi-line rendering: one summary line plus one line per violation.
  [[nodiscard]] std::string to_string() const;
};

struct AuditOptions {
  /// Verify complete parent chunks against the roll-up of fully-resident
  /// complete child levels.  O(cells of both levels) per parent chunk;
  /// exact up to floating-point merge-order noise (rollup_rel_tol).
  bool check_rollup = true;
  double rollup_rel_tol = 1e-6;
  /// Stop collecting after this many violations (a corrupted graph would
  /// otherwise emit one violation per cell).
  std::size_t max_violations = 64;
  /// When set, freshness last_update timestamps must not exceed it.
  std::optional<sim::SimTime> now;
};

class GraphAuditor {
 public:
  explicit GraphAuditor(AuditOptions options = {}) : options_(options) {}

  /// Audits one graph; report.ok() iff every invariant holds.
  [[nodiscard]] AuditReport audit(const StashGraph& graph) const;

  /// Audits a routing table: levels in range, chunk keys well-formed,
  /// helper ids within [0, num_nodes) and != self.
  [[nodiscard]] AuditReport audit_routing(const RoutingTable& routing,
                                          std::uint32_t num_nodes,
                                          std::uint32_t self) const;

  /// Audits a membership ring view: non-empty, members sorted and
  /// duplicate-free, every member within [0, total_slots).  Epoch-aware
  /// checks on the handoff records live with their owner (the cluster),
  /// which reports through the same violation kind.
  [[nodiscard]] AuditReport audit_ring(const RingView& ring,
                                       std::uint32_t total_slots) const;

 private:
  void check_chunks(const StashGraph& graph, AuditReport& report) const;
  void check_rollups(const StashGraph& graph, AuditReport& report) const;
  /// Appends a violation; returns false once max_violations is reached.
  bool add(AuditReport& report, AuditViolationKind kind,
           std::string detail) const;

  AuditOptions options_;
};

}  // namespace stash
