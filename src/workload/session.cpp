#include "workload/session.hpp"

#include <algorithm>

namespace stash::workload {

using client::NavAction;

SessionGenerator::SessionGenerator(WorkloadConfig workload)
    : workload_(workload), rng_(workload.seed ^ 0x5345535347454eULL) {}

Session SessionGenerator::generate(const SessionConfig& config) {
  Session session;
  session.queries.push_back(
      config.start_center.has_value()
          ? workload_.query_at(config.start_group, *config.start_center)
          : workload_.random_query(config.start_group));
  std::optional<NavAction> last_pan;

  static constexpr NavAction kPans[] = {
      NavAction::PanN, NavAction::PanNE, NavAction::PanE, NavAction::PanSE,
      NavAction::PanS, NavAction::PanSW, NavAction::PanW, NavAction::PanNW};

  for (int i = 0; i < config.actions; ++i) {
    const AggregationQuery& current = session.queries.back();
    NavAction action;
    if (last_pan.has_value() && rng_.bernoulli(config.momentum)) {
      action = *last_pan;  // momentum: keep panning the same way
    } else {
      const double total = config.pan_weight + config.zoom_weight +
                           config.slice_weight + config.jump_weight;
      const double draw = rng_.uniform(0.0, total);
      if (draw < config.pan_weight) {
        action = kPans[rng_.next_below(8)];
      } else if (draw < config.pan_weight + config.zoom_weight) {
        const bool can_drill = current.res.spatial < config.max_spatial;
        const bool can_roll = current.res.spatial > config.min_spatial;
        if (can_drill && (!can_roll || rng_.bernoulli(0.5))) {
          action = NavAction::DrillDown;
        } else if (can_roll) {
          action = NavAction::RollUp;
        } else {
          action = kPans[rng_.next_below(8)];
        }
      } else if (draw <
                 config.pan_weight + config.zoom_weight + config.slice_weight) {
        action = rng_.bernoulli(0.5) ? NavAction::SliceNext : NavAction::SlicePrev;
      } else {
        action = NavAction::Jump;
      }
    }

    std::optional<AggregationQuery> next;
    if (action == NavAction::Jump) {
      AggregationQuery q = workload_.random_query(config.start_group);
      q.res = current.res;
      q.time = current.time;
      next = q;
    } else {
      next = client::apply_action(current, action, config.min_spatial,
                                  config.pan_fraction);
      if (!next.has_value()) {  // hit a limit: fall back to a pan
        action = kPans[rng_.next_below(8)];
        next = client::apply_action(current, action, config.min_spatial,
                                    config.pan_fraction);
      }
    }
    last_pan = std::find(std::begin(kPans), std::end(kPans), action) !=
                       std::end(kPans)
                   ? std::make_optional(action)
                   : std::nullopt;
    session.actions.push_back(action);
    session.queries.push_back(*next);
  }
  return session;
}

std::vector<AggregationQuery> SessionGenerator::interleaved(
    const SessionConfig& config, std::size_t users) {
  std::vector<Session> sessions;
  sessions.reserve(users);
  for (std::size_t u = 0; u < users; ++u) sessions.push_back(generate(config));
  std::vector<AggregationQuery> out;
  out.reserve(users * sessions.front().queries.size());
  for (std::size_t step = 0; step < sessions.front().queries.size(); ++step)
    for (const auto& session : sessions)
      if (step < session.queries.size()) out.push_back(session.queries[step]);
  return out;
}

}  // namespace stash::workload
