// Multi-user exploration-session generator.
//
// The figure benches replay the paper's isolated operator sequences; this
// generator produces *realistic mixed sessions* — each simulated user
// walks a Markov chain over the §V-B operators (pan with momentum, zoom
// in/out, slice, re-dice elsewhere) — for the mixed-workload bench and
// the integration tests.
#pragma once

#include <optional>

#include "client/predictor.hpp"
#include "workload/workload.hpp"

namespace stash::workload {

struct SessionConfig {
  QueryGroup start_group = QueryGroup::County;
  /// When set, every session starts at this center (a popular region all
  /// users converge on — the collective-caching scenario); otherwise each
  /// session starts at a random rectangle.
  std::optional<LatLng> start_center;
  int actions = 30;
  /// Momentum: probability of repeating the previous pan direction.
  double momentum = 0.6;
  /// Probability mix of the non-momentum actions.
  double pan_weight = 0.5;
  double zoom_weight = 0.2;
  double slice_weight = 0.2;
  double jump_weight = 0.1;
  double pan_fraction = 0.2;
  int min_spatial = 3;
  int max_spatial = 7;
  std::uint64_t seed = 0x53455353ULL;  // "SESS"
};

/// One user's session: the initial dice plus `actions` derived views, with
/// the action that produced each view.
struct Session {
  std::vector<AggregationQuery> queries;
  std::vector<client::NavAction> actions;  // actions[i] produced queries[i+1]
};

class SessionGenerator {
 public:
  explicit SessionGenerator(WorkloadConfig workload = {});

  [[nodiscard]] Session generate(const SessionConfig& config);

  /// `users` independent sessions, interleaved round-robin — the traffic a
  /// shared cluster actually sees (collective caching, §V-B).
  [[nodiscard]] std::vector<AggregationQuery> interleaved(
      const SessionConfig& config, std::size_t users);

 private:
  WorkloadGenerator workload_;
  Rng rng_;
};

}  // namespace stash::workload
