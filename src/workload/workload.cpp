#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/civil_time.hpp"

namespace stash::workload {

std::string to_string(QueryGroup group) {
  switch (group) {
    case QueryGroup::Country: return "country";
    case QueryGroup::State: return "state";
    case QueryGroup::County: return "county";
    case QueryGroup::City: return "city";
  }
  return "?";
}

Extent extent_of(QueryGroup group) noexcept {
  switch (group) {
    case QueryGroup::Country: return {16.0, 32.0};
    case QueryGroup::State: return {4.0, 8.0};
    case QueryGroup::County: return {0.6, 1.2};
    case QueryGroup::City: return {0.2, 0.5};
  }
  return {0.0, 0.0};
}

WorkloadConfig::WorkloadConfig()
    : time{unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})} {}

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config)
    : config_(config), rng_(config.seed) {
  if (!config_.domain.valid())
    throw std::invalid_argument("WorkloadGenerator: invalid domain");
}

AggregationQuery WorkloadGenerator::query_at(QueryGroup group,
                                             const LatLng& center) const {
  const Extent e = extent_of(group);
  BoundingBox box{center.lat - e.dlat / 2.0, center.lat + e.dlat / 2.0,
                  center.lng - e.dlng / 2.0, center.lng + e.dlng / 2.0};
  // Clamp into the domain, preserving size.
  box = box.translated(
      std::max(0.0, config_.domain.lat_min - box.lat_min) +
          std::min(0.0, config_.domain.lat_max - box.lat_max),
      std::max(0.0, config_.domain.lng_min - box.lng_min) +
          std::min(0.0, config_.domain.lng_max - box.lng_max));
  return {box, config_.time, config_.res};
}

AggregationQuery WorkloadGenerator::random_query(QueryGroup group) {
  const Extent e = extent_of(group);
  const double lat =
      rng_.uniform(config_.domain.lat_min + e.dlat / 2.0,
                   std::max(config_.domain.lat_min + e.dlat / 2.0,
                            config_.domain.lat_max - e.dlat / 2.0));
  const double lng =
      rng_.uniform(config_.domain.lng_min + e.dlng / 2.0,
                   std::max(config_.domain.lng_min + e.dlng / 2.0,
                            config_.domain.lng_max - e.dlng / 2.0));
  return query_at(group, {lat, lng});
}

std::vector<AggregationQuery> WorkloadGenerator::iterative_dicing(
    QueryGroup start, int steps, bool descending, double dim_factor) {
  if (steps < 1) throw std::invalid_argument("iterative_dicing: steps >= 1");
  if (dim_factor <= 0.0 || dim_factor >= 1.0)
    throw std::invalid_argument("iterative_dicing: dim_factor in (0,1)");
  const AggregationQuery base = random_query(start);
  std::vector<AggregationQuery> out;
  out.reserve(static_cast<std::size_t>(steps));
  const LatLng center = base.area.center();
  double scale = 1.0;
  for (int i = 0; i < steps; ++i) {
    AggregationQuery q = base;
    const double h = base.area.height() * scale / 2.0;
    const double w = base.area.width() * scale / 2.0;
    q.area = {center.lat - h, center.lat + h, center.lng - w, center.lng + w};
    out.push_back(q);
    scale *= dim_factor;
  }
  if (!descending) std::reverse(out.begin(), out.end());
  return out;
}

std::vector<AggregationQuery> WorkloadGenerator::panning_sequence(
    const AggregationQuery& base, double fraction) const {
  std::vector<AggregationQuery> out;
  out.reserve(9);
  out.push_back(base);
  static constexpr double kDir[8][2] = {{1, 0},  {1, 1},   {0, 1},  {-1, 1},
                                        {-1, 0}, {-1, -1}, {0, -1}, {1, -1}};
  for (const auto& d : kDir) {
    AggregationQuery q = base;
    q.area = base.area.translated(d[0] * fraction * base.area.height(),
                                  d[1] * fraction * base.area.width());
    out.push_back(q);
  }
  return out;
}

std::vector<AggregationQuery> WorkloadGenerator::pan_walk(
    const AggregationQuery& base, double fraction, std::size_t steps) {
  std::vector<AggregationQuery> out;
  out.reserve(steps + 1);
  out.push_back(base);
  AggregationQuery current = base;
  for (std::size_t i = 0; i < steps; ++i) {
    const double angle = rng_.uniform(0.0, 2.0 * 3.14159265358979);
    current.area = current.area.translated(
        std::sin(angle) * fraction * current.area.height(),
        std::cos(angle) * fraction * current.area.width());
    out.push_back(current);
  }
  return out;
}

std::vector<AggregationQuery> WorkloadGenerator::zoom_sequence(
    const AggregationQuery& base, int from, int to) const {
  std::vector<AggregationQuery> out;
  const int step = from <= to ? 1 : -1;
  for (int s = from;; s += step) {
    AggregationQuery q = base;
    q.res.spatial = s;
    out.push_back(q);
    if (s == to) break;
  }
  return out;
}

std::vector<AggregationQuery> WorkloadGenerator::throughput_workload(
    QueryGroup group, std::size_t rects, std::size_t pans, double fraction) {
  // §VIII-D.4: "randomly panning around each by 10% in any random
  // direction 100 times" — each pan is an offset from the rectangle
  // itself, keeping the traffic clustered on the rectangle's neighborhood
  // (spatiotemporal locality), not a drifting random walk.
  std::vector<AggregationQuery> out;
  out.reserve(rects * (pans + 1));
  for (std::size_t r = 0; r < rects; ++r) {
    const AggregationQuery base = random_query(group);
    out.push_back(base);
    for (std::size_t p = 0; p < pans; ++p) {
      const double angle = rng_.uniform(0.0, 2.0 * 3.14159265358979);
      AggregationQuery q = base;
      q.area = base.area.translated(
          std::sin(angle) * fraction * base.area.height(),
          std::cos(angle) * fraction * base.area.width());
      out.push_back(q);
    }
  }
  return out;
}

std::vector<AggregationQuery> WorkloadGenerator::hotspot_burst(
    QueryGroup group, std::size_t n, double fraction) {
  std::vector<AggregationQuery> out;
  out.reserve(n);
  const AggregationQuery base = random_query(group);
  for (std::size_t i = 0; i < n; ++i) {
    AggregationQuery q = base;
    q.area = base.area.translated(
        fraction * base.area.height() * rng_.uniform(-1.0, 1.0),
        fraction * base.area.width() * rng_.uniform(-1.0, 1.0));
    out.push_back(q);
  }
  return out;
}

std::vector<AggregationQuery> WorkloadGenerator::zipf_workload(
    QueryGroup group, std::size_t regions, std::size_t n, double skew) {
  std::vector<AggregationQuery> bases;
  bases.reserve(regions);
  for (std::size_t i = 0; i < regions; ++i) bases.push_back(random_query(group));
  const ZipfDistribution zipf(regions, skew);
  std::vector<AggregationQuery> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(bases[zipf.sample(rng_)]);
  return out;
}

}  // namespace stash::workload
