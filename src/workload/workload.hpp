// Workload generators reproducing the paper's query mixes (§VIII).
//
// Query groups (§VIII-A): four spatial extents with a fixed one-day
// temporal extent (2015-02-02) at spatial resolution 6 / temporal 'Day':
//   country (16°, 32°), state (4°, 8°), county (0.6°, 1.2°), city (0.2°, 0.5°).
// Sequences model the §V-B navigation operators: iterative dicing (Fig 7a/b),
// panning in 8 directions (Fig 7c), drill-down / roll-up (Fig 7d/e), the
// Fig 6b throughput mix (random rectangles, each panned 100 times), and the
// Fig 6d hotspot burst (random pans around one point).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "core/query.hpp"

namespace stash::workload {

enum class QueryGroup { Country, State, County, City };

[[nodiscard]] std::string to_string(QueryGroup group);

/// (latitudinal, longitudinal) extent in degrees, per §VIII-A.
struct Extent {
  double dlat;
  double dlng;
};
[[nodiscard]] Extent extent_of(QueryGroup group) noexcept;

struct WorkloadConfig {
  /// Domain rectangles are drawn from (defaults to the NAM-like coverage,
  /// inset so even country-sized boxes fit).
  BoundingBox domain{16.0, 59.0, -134.0, -56.0};
  /// Query_Time: 2015-02-02 (paper §VIII-A) unless a sequence says otherwise.
  TimeRange time;
  Resolution res{6, TemporalRes::Day};
  std::uint64_t seed = 0x574c4f4144ULL;

  WorkloadConfig();
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config = {});

  [[nodiscard]] const WorkloadConfig& config() const noexcept { return config_; }

  /// A random rectangle of the group's extent inside the domain.
  [[nodiscard]] AggregationQuery random_query(QueryGroup group);

  /// A rectangle of the group's extent centered at `center` (clamped).
  [[nodiscard]] AggregationQuery query_at(QueryGroup group, const LatLng& center) const;

  /// Iterative dicing (Fig 7a/b): `steps` queries starting at the given
  /// group's extent; each step scales both dimensions by `dim_factor`
  /// (paper: "20% spatial area reduction" per step → 0.8).  Descending
  /// starts large and shrinks; ascending is the reverse order.
  [[nodiscard]] std::vector<AggregationQuery> iterative_dicing(
      QueryGroup start, int steps, bool descending, double dim_factor = 0.8);

  /// Panning (Fig 7c): the base query followed by moves of
  /// `fraction` x extent in each of the 8 compass directions, returning to
  /// the base between moves (9 queries total including the base).
  [[nodiscard]] std::vector<AggregationQuery> panning_sequence(
      const AggregationQuery& base, double fraction) const;

  /// A random walk of pans: each step moves by `fraction` in a random
  /// direction (the Fig 6b / Fig 6d traffic unit).
  [[nodiscard]] std::vector<AggregationQuery> pan_walk(
      const AggregationQuery& base, double fraction, std::size_t steps);

  /// Drill-down (Fig 7d): the same area queried at spatial resolutions
  /// `from`..`to` ascending; roll-up (Fig 7e) is descending.
  [[nodiscard]] std::vector<AggregationQuery> zoom_sequence(
      const AggregationQuery& base, int from, int to) const;

  /// Fig 6b throughput workload: `rects` random rectangles of the group's
  /// size, each panned `pans` times by `fraction` in random directions —
  /// "to replicate spatiotemporal locality of requests".
  [[nodiscard]] std::vector<AggregationQuery> throughput_workload(
      QueryGroup group, std::size_t rects, std::size_t pans, double fraction);

  /// Fig 6d hotspot burst: `n` county-level requests randomly panning
  /// around a single random starting point.
  [[nodiscard]] std::vector<AggregationQuery> hotspot_burst(
      QueryGroup group, std::size_t n, double fraction);

  /// Zipf-skewed region popularity (§V-A): draws `n` queries over `regions`
  /// distinct rectangles with rank-`skew` popularity.
  [[nodiscard]] std::vector<AggregationQuery> zipf_workload(
      QueryGroup group, std::size_t regions, std::size_t n, double skew);

 private:
  WorkloadConfig config_;
  Rng rng_;
};

}  // namespace stash::workload
