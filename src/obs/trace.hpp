// Observability: per-query span tracing (Dapper-style).
//
// Every query the cluster runs becomes a tree of TraceSpans recorded
// against the *simulated* clock: root "query" span, "plan"/"scatter"/
// "merge" stages, one "subquery" span per scattered partition, one
// "attempt" span per (re)try — including failovers and reroutes — and a
// "serve" span with cache-probe / disk / roll-up / merge children on the
// node that executed it.  Because spans carry virtual timestamps, the
// same seed + workload yields a byte-identical trace export, so traces
// are assertable in tests, diffable across commits, and safe to check in
// as goldens.
//
// Span invariants the cluster instrumentation maintains (tests rely on
// them): root spans [submitted_at, completed_at]; "scatter" ends exactly
// where "merge" begins, and merge ends with the root — so
// scatter.duration + merge.duration == QueryStats::latency().  "serve"
// child spans partition the service time exactly.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "sim/clock.hpp"

namespace stash::obs {

using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = std::numeric_limits<SpanId>::max();

struct TraceSpan {
  SpanId id = 0;
  SpanId parent = kNoSpan;  // kNoSpan for the root
  std::string name;
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  /// Key/value annotations in insertion order (deterministic).
  std::vector<std::pair<std::string, std::string>> tags;

  [[nodiscard]] sim::SimTime duration() const noexcept { return end - start; }
};

struct Trace {
  std::uint64_t query_id = 0;
  /// spans[i].id == i; spans[0] is the root.
  std::vector<TraceSpan> spans;
};

/// Records traces into a bounded ring: when `capacity` traces are
/// retained, starting a new one evicts the oldest.  Every operation on an
/// unknown (evicted, or never-started because tracing is disabled)
/// query id is a safe no-op, so instrumentation never has to check
/// whether its trace is still alive — important under 10k-query bursts
/// with a small ring.
class Tracer {
 public:
  explicit Tracer(bool enabled = true, std::size_t capacity = 256);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Opens a trace and its root span; returns the root SpanId (kNoSpan
  /// when disabled).  Restarting an id drops the previous trace.
  SpanId start_trace(std::uint64_t query_id, std::string_view name,
                     sim::SimTime now);
  SpanId start_span(std::uint64_t query_id, SpanId parent,
                    std::string_view name, sim::SimTime now);
  /// Records a span that is already finished (start and end known).
  SpanId record_span(std::uint64_t query_id, SpanId parent,
                     std::string_view name, sim::SimTime start,
                     sim::SimTime end);
  void end_span(std::uint64_t query_id, SpanId span, sim::SimTime now);
  void tag(std::uint64_t query_id, SpanId span, std::string_view key,
           std::string_view value);

  [[nodiscard]] std::optional<Trace> find(std::uint64_t query_id) const;
  /// Retained query ids, oldest first.
  [[nodiscard]] std::vector<std::uint64_t> query_ids() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  bool enabled_;
  std::size_t capacity_;
  mutable Mutex mutex_;
  std::deque<std::uint64_t> order_ STASH_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, Trace> traces_ STASH_GUARDED_BY(mutex_);
};

/// Compact deterministic JSON, schema "stash-trace-v1".
[[nodiscard]] std::string to_json(const Trace& trace);

/// Human-readable span tree (stashctl --trace, chaos_failover):
///   query #7 [0..5400us] 5400us
///     scatter [0..4100us] 4100us
///       subquery 9q [0..4100us] ok ...
[[nodiscard]] std::string render_tree(const Trace& trace);

}  // namespace stash::obs
