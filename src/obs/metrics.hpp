// Observability: named metrics with Prometheus-style exposition.
//
// The paper's whole evaluation (§VI) is latency/throughput/overhead
// curves, so the reproduction needs first-class instrumentation rather
// than ad-hoc counter structs.  A MetricsRegistry owns named counters,
// gauges, and fixed-bucket histograms:
//
//   * increments are lock-free (relaxed atomics) — safe on the hot query
//     path and from the real threads of ConcurrentStashGraph clients;
//   * registration and snapshot/export take the registry mutex — cold
//     paths only;
//   * exports are deterministic: metrics are emitted in sorted name
//     order, so equal runs produce byte-identical text/JSON.
//
// Naming follows the Prometheus convention: `stash_<noun>_total` for
// counters, `stash_<noun>` for gauges, `stash_<noun>_us` for latency
// histograms (values in simulated microseconds).
//
// stash-lint: allow-file(raw-atomic) -- metric cells are monotonic
// counters with no cross-location ordering to verify; instrumenting them
// would put the checker inside every hot-path increment for no coverage.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "sim/clock.hpp"

namespace stash::obs {

/// Monotonic event count.  Lock-free.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value that can move both ways.  Lock-free.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (Prometheus semantics: `upper_bounds` are the
/// inclusive `le` bucket edges; an implicit +Inf bucket catches the rest).
/// Observations are lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Per-bucket (non-cumulative) counts; the final entry is the +Inf bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// The default latency buckets (µs): 100us .. 10s, roughly 1-2-5 spaced.
[[nodiscard]] std::vector<double> latency_buckets_us();

enum class MetricKind { Counter, Gauge };

struct ScalarSnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::Counter;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::string help;
  std::vector<double> upper_bounds;
  /// Cumulative counts per bucket, Prometheus-style; the final entry is
  /// the +Inf bucket and equals `count`.
  std::vector<std::uint64_t> cumulative;
  double sum = 0.0;
  std::uint64_t count = 0;
};

struct MetricsSnapshot {
  std::vector<ScalarSnapshot> scalars;        // sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name
};

/// Owns metrics by name.  Registration is idempotent: asking for an
/// existing name returns the same instance (a name registered as a
/// different type throws std::invalid_argument).  Returned references
/// stay valid for the registry's lifetime — hot paths hold them and never
/// re-enter the lock.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> upper_bounds);
  /// A metric computed at snapshot time (e.g. summed over per-node state).
  void callback(const std::string& name, const std::string& help,
                MetricKind kind, std::function<double()> fn);

  /// Consistent read of every registered metric, sorted by name.
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    std::string help;
    MetricKind kind = MetricKind::Counter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> fn;
  };

  mutable Mutex mutex_;
  std::map<std::string, Entry> entries_ STASH_GUARDED_BY(mutex_);
};

/// Prometheus text exposition format (HELP/TYPE + samples).
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// JSON export, schema "stash-metrics-v1" — the payload bench figures and
/// the CI metrics lane consume (see tools/metrics_schema.json).
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot,
                                  sim::SimTime sim_time);

}  // namespace stash::obs
