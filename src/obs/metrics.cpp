#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace stash::obs {

namespace {

/// Deterministic number rendering shared by both exporters: integers
/// print without a decimal point, everything else with up to 15
/// significant digits (doubles holding counter values stay exact well
/// past any simulated run length).
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::rint(v) && std::abs(v) < 9.0e15) {
    return std::to_string(static_cast<long long>(v));
  }
  std::ostringstream out;
  out.precision(15);
  out << v;
  return out.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bucket bounds must be sorted");
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

std::vector<double> latency_buckets_us() {
  return {100.0,     250.0,     500.0,      1'000.0,    2'500.0,
          5'000.0,   10'000.0,  25'000.0,   50'000.0,   100'000.0,
          250'000.0, 500'000.0, 1'000'000.0, 2'500'000.0, 10'000'000.0};
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  MutexLock lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.counter == nullptr) {
    if (entry.gauge || entry.histogram || entry.fn)
      throw std::invalid_argument("MetricsRegistry: " + name +
                                  " already registered with another type");
    entry.help = help;
    entry.kind = MetricKind::Counter;
    entry.counter = std::make_unique<Counter>();
  }
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  MutexLock lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.gauge == nullptr) {
    if (entry.counter || entry.histogram || entry.fn)
      throw std::invalid_argument("MetricsRegistry: " + name +
                                  " already registered with another type");
    entry.help = help;
    entry.kind = MetricKind::Gauge;
    entry.gauge = std::make_unique<Gauge>();
  }
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> upper_bounds) {
  MutexLock lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.histogram == nullptr) {
    if (entry.counter || entry.gauge || entry.fn)
      throw std::invalid_argument("MetricsRegistry: " + name +
                                  " already registered with another type");
    entry.help = help;
    entry.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *entry.histogram;
}

void MetricsRegistry::callback(const std::string& name, const std::string& help,
                               MetricKind kind, std::function<double()> fn) {
  MutexLock lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.counter || entry.gauge || entry.histogram)
    throw std::invalid_argument("MetricsRegistry: " + name +
                                " already registered with another type");
  entry.help = help;
  entry.kind = kind;
  entry.fn = std::move(fn);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, entry] : entries_) {  // std::map: sorted by name
    if (entry.histogram != nullptr) {
      HistogramSnapshot h;
      h.name = name;
      h.help = entry.help;
      h.upper_bounds = entry.histogram->upper_bounds();
      std::uint64_t running = 0;
      for (const std::uint64_t c : entry.histogram->bucket_counts()) {
        running += c;
        h.cumulative.push_back(running);
      }
      h.sum = entry.histogram->sum();
      h.count = entry.histogram->count();
      out.histograms.push_back(std::move(h));
      continue;
    }
    ScalarSnapshot s;
    s.name = name;
    s.help = entry.help;
    s.kind = entry.kind;
    if (entry.counter != nullptr) {
      s.value = static_cast<double>(entry.counter->value());
    } else if (entry.gauge != nullptr) {
      s.value = entry.gauge->value();
    } else if (entry.fn) {
      s.value = entry.fn();
    }
    out.scalars.push_back(std::move(s));
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& s : snapshot.scalars) {
    out << "# HELP " << s.name << ' ' << s.help << '\n';
    out << "# TYPE " << s.name << ' '
        << (s.kind == MetricKind::Counter ? "counter" : "gauge") << '\n';
    out << s.name << ' ' << format_number(s.value) << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    out << "# HELP " << h.name << ' ' << h.help << '\n';
    out << "# TYPE " << h.name << " histogram\n";
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      out << h.name << "_bucket{le=\"" << format_number(h.upper_bounds[i])
          << "\"} " << h.cumulative[i] << '\n';
    }
    out << h.name << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    out << h.name << "_sum " << format_number(h.sum) << '\n';
    out << h.name << "_count " << h.count << '\n';
  }
  return out.str();
}

std::string to_json(const MetricsSnapshot& snapshot, sim::SimTime sim_time) {
  std::ostringstream out;
  out << "{\"schema\":\"stash-metrics-v1\",\"sim_time_us\":" << sim_time;
  out << ",\"counters\":{";
  bool first = true;
  for (const auto& s : snapshot.scalars) {
    if (s.kind != MetricKind::Counter) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(s.name) << "\":" << format_number(s.value);
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& s : snapshot.scalars) {
    if (s.kind != MetricKind::Gauge) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(s.name) << "\":" << format_number(s.value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& h : snapshot.histograms) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(h.name) << "\":{\"sum\":" << format_number(h.sum)
        << ",\"count\":" << h.count << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      if (i != 0) out << ',';
      out << "{\"le\":" << format_number(h.upper_bounds[i])
          << ",\"count\":" << h.cumulative[i] << '}';
    }
    if (!h.upper_bounds.empty()) out << ',';
    out << "{\"le\":\"+Inf\",\"count\":" << h.count << "}]}";
  }
  out << "}}";
  return out.str();
}

}  // namespace stash::obs
