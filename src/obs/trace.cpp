#include "obs/trace.hpp"

#include <sstream>

namespace stash::obs {

namespace {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Tracer::Tracer(bool enabled, std::size_t capacity)
    : enabled_(enabled), capacity_(capacity == 0 ? 1 : capacity) {}

SpanId Tracer::start_trace(std::uint64_t query_id, std::string_view name,
                           sim::SimTime now) {
  if (!enabled_) return kNoSpan;
  MutexLock lock(mutex_);
  if (traces_.count(query_id) == 0) {
    while (order_.size() >= capacity_) {
      traces_.erase(order_.front());
      order_.pop_front();
    }
    order_.push_back(query_id);
  }
  Trace& trace = traces_[query_id];
  trace.query_id = query_id;
  trace.spans.clear();
  TraceSpan root;
  root.id = 0;
  root.parent = kNoSpan;
  root.name = std::string(name);
  root.start = now;
  root.end = now;
  trace.spans.push_back(std::move(root));
  return 0;
}

SpanId Tracer::start_span(std::uint64_t query_id, SpanId parent,
                          std::string_view name, sim::SimTime now) {
  return record_span(query_id, parent, name, now, now);
}

SpanId Tracer::record_span(std::uint64_t query_id, SpanId parent,
                           std::string_view name, sim::SimTime start,
                           sim::SimTime end) {
  if (!enabled_) return kNoSpan;
  MutexLock lock(mutex_);
  const auto it = traces_.find(query_id);
  if (it == traces_.end()) return kNoSpan;  // evicted: no-op
  Trace& trace = it->second;
  TraceSpan span;
  span.id = static_cast<SpanId>(trace.spans.size());
  span.parent = parent;
  span.name = std::string(name);
  span.start = start;
  span.end = end;
  trace.spans.push_back(std::move(span));
  return static_cast<SpanId>(trace.spans.size() - 1);
}

void Tracer::end_span(std::uint64_t query_id, SpanId span, sim::SimTime now) {
  if (!enabled_ || span == kNoSpan) return;
  MutexLock lock(mutex_);
  const auto it = traces_.find(query_id);
  if (it == traces_.end()) return;
  if (span >= it->second.spans.size()) return;
  it->second.spans[span].end = now;
}

void Tracer::tag(std::uint64_t query_id, SpanId span, std::string_view key,
                 std::string_view value) {
  if (!enabled_ || span == kNoSpan) return;
  MutexLock lock(mutex_);
  const auto it = traces_.find(query_id);
  if (it == traces_.end()) return;
  if (span >= it->second.spans.size()) return;
  it->second.spans[span].tags.emplace_back(std::string(key),
                                           std::string(value));
}

std::optional<Trace> Tracer::find(std::uint64_t query_id) const {
  MutexLock lock(mutex_);
  const auto it = traces_.find(query_id);
  if (it == traces_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::uint64_t> Tracer::query_ids() const {
  MutexLock lock(mutex_);
  return {order_.begin(), order_.end()};
}

std::size_t Tracer::size() const {
  MutexLock lock(mutex_);
  return traces_.size();
}

void Tracer::clear() {
  MutexLock lock(mutex_);
  traces_.clear();
  order_.clear();
}

std::string to_json(const Trace& trace) {
  std::ostringstream out;
  out << "{\"schema\":\"stash-trace-v1\",\"query_id\":" << trace.query_id
      << ",\"spans\":[";
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const TraceSpan& span = trace.spans[i];
    if (i != 0) out << ',';
    out << "{\"id\":" << span.id << ",\"parent\":";
    if (span.parent == kNoSpan) {
      out << "null";
    } else {
      out << span.parent;
    }
    out << ",\"name\":\"" << escape(span.name) << "\",\"start_us\":"
        << span.start << ",\"end_us\":" << span.end << ",\"tags\":{";
    for (std::size_t t = 0; t < span.tags.size(); ++t) {
      if (t != 0) out << ',';
      out << '"' << escape(span.tags[t].first) << "\":\""
          << escape(span.tags[t].second) << '"';
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

namespace {

void render_node(const Trace& trace, SpanId id, int depth,
                 std::ostringstream& out) {
  const TraceSpan& span = trace.spans[id];
  for (int i = 0; i < depth; ++i) out << "  ";
  out << span.name << " [" << span.start << ".." << span.end << "us] "
      << span.duration() << "us";
  for (const auto& [key, value] : span.tags)
    out << ' ' << key << '=' << value;
  out << '\n';
  for (const TraceSpan& child : trace.spans)
    if (child.parent == id) render_node(trace, child.id, depth + 1, out);
}

}  // namespace

std::string render_tree(const Trace& trace) {
  std::ostringstream out;
  if (trace.spans.empty()) return "(empty trace)\n";
  out << "query #" << trace.query_id << '\n';
  render_node(trace, 0, 0, out);
  return out.str();
}

}  // namespace stash::obs
