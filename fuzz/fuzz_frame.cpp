// Fuzz harness: the checksummed frame decoder.
//
// Feeds arbitrary bytes into decode_frame.  The decoder must either reject
// the buffer with IntegrityError or return the exact payload bytes of a
// well-formed frame; re-framing an accepted payload must reproduce the
// input bit-for-bit (the frame format has no redundancy to be non-minimal
// about).  Any crash, unexpected exception type, or allocation driven by a
// declared length the buffer cannot back is a finding.
#include <stdexcept>

#include "common/codec.hpp"
#include "fuzz_util.hpp"

using namespace stash;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const codec::Buffer input(data, data + size);
  codec::Buffer payload;
  try {
    payload = codec::decode_frame(input);
  } catch (const codec::IntegrityError&) {
    return 0;  // bad magic, bad length, or checksum mismatch
  }

  // Accepted frames are canonical: encode(decode(x)) == x, and the payload
  // accounts for every byte beyond the fixed overhead.
  FUZZ_CHECK(payload.size() == input.size() - codec::kFrameOverhead);
  FUZZ_CHECK(codec::encode_frame(payload) == input);
  return 0;
}
