// Shared helpers for the libFuzzer harnesses in fuzz/.
//
// Each harness defines LLVMFuzzerTestOneInput and is linked either against
// libFuzzer (-DSTASH_FUZZ=ON, Clang) or against standalone_main.cpp, which
// feeds deterministic pseudo-random inputs so any toolchain can smoke-run
// the same code.  FUZZ_CHECK aborts — both drivers treat that as a finding.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#define FUZZ_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FUZZ_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

namespace fuzz {

/// Sequential little-endian consumer over the fuzzer's byte string.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8() { return pos_ < size_ ? data_[pos_++] : 0; }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace fuzz
