// Fuzz harness: civil-time arithmetic and the temporal-bin hierarchy.
//
// Pins the calendar laws STASH's temporal hierarchy depends on:
//   * civil_from_days / days_from_civil are inverse bijections
//   * civil_from_unix_seconds truncates to the containing hour
//   * a TemporalBin at any resolution contains its timestamp, its range is
//     non-empty, next()/prev() tile the timeline, parents nest children
//   * TemporalBin::unpack accepts a u32 iff it round-trips through pack()
#include <stdexcept>

#include "common/civil_time.hpp"
#include "fuzz_util.hpp"
#include "geo/temporal.hpp"

using namespace stash;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz::ByteReader in(data, size);

  // Clamp into the supported civil range (years 1..15999 keeps every bin
  // and its prev/next constructible).
  const std::int64_t lo = unix_seconds(CivilDate{1, 1, 1});
  const std::int64_t hi = unix_seconds(CivilDate{15999, 12, 31});
  const std::int64_t span = hi - lo;
  std::int64_t ts = in.i64() % span;
  if (ts < 0) ts += span;
  ts += lo;

  // Civil round-trips.
  const CivilDateTime dt = civil_from_unix_seconds(ts);
  const std::int64_t floor_hour = unix_seconds(dt.date, dt.hour);
  FUZZ_CHECK(floor_hour <= ts && ts < floor_hour + 3600);
  FUZZ_CHECK(dt.date.month >= 1 && dt.date.month <= 12);
  FUZZ_CHECK(dt.date.day >= 1 &&
             dt.date.day <= days_in_month(dt.date.year, dt.date.month));
  const std::int64_t days = days_from_civil(dt.date);
  FUZZ_CHECK(civil_from_days(days) == dt.date);
  FUZZ_CHECK(days * 86400 == unix_seconds(dt.date));

  // Temporal bins at every resolution.
  for (int r = 0; r < kNumTemporalRes; ++r) {
    const auto res = static_cast<TemporalRes>(r);
    const TemporalBin bin = TemporalBin::of_timestamp(ts, res);
    const TimeRange range = bin.range();
    FUZZ_CHECK(range.begin < range.end);
    FUZZ_CHECK(range.contains(ts));
    // next()/prev() tile the timeline without gaps or overlap.
    FUZZ_CHECK(bin.next().range().begin == range.end);
    FUZZ_CHECK(bin.prev().range().end == range.begin);
    // pack() is a stable identity.
    FUZZ_CHECK(TemporalBin::unpack(bin.pack()) == bin);
    // The parent bin contains this one.
    if (const auto parent = bin.parent()) {
      FUZZ_CHECK(parent->contains(bin));
      FUZZ_CHECK(parent->range().begin <= range.begin &&
                 range.end <= parent->range().end);
    }
  }

  // Arbitrary u32 through unpack: must either throw or round-trip exactly.
  const std::uint32_t packed = in.u32();
  try {
    const TemporalBin bin = TemporalBin::unpack(packed);
    FUZZ_CHECK(bin.pack() == packed);
    FUZZ_CHECK(bin.range().begin < bin.range().end);
  } catch (const std::invalid_argument&) {
    // expected for malformed keys
  }
  return 0;
}
