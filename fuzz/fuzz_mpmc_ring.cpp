// Fuzz harness: the bounded MPMC ring against a reference deque.
//
// The model checker (tests/mc/mpmc_ring_mc_test.cpp) proves the ring's
// *ordering* properties over small interleavings; this harness drives the
// *arithmetic* — cursor wraparound, sequence lap accounting, full/empty
// verdicts — through byte-driven single-threaded op sequences far longer
// than any schedule the checker can afford, cross-checked against
// std::deque.  Single-threaded on purpose: with one thread the lock-free
// ring must agree with a FIFO queue exactly, so any divergence (lost slot,
// duplicated element, wrong verdict) is a finding rather than a tolerated
// race outcome.  UBSan (the fuzz build links it) turns a hidden overflow
// in the seq/cursor arithmetic into a crash.
#include <cstdint>
#include <deque>
#include <optional>

#include "concurrency/mpmc_ring.hpp"
#include "fuzz_util.hpp"

using stash::concurrency::MpmcRing;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz::ByteReader in(data, size);

  // Capacity: power of two in [2, 128], exercised across the whole range
  // so small rings hit wraparound every few ops.
  const std::size_t capacity = std::size_t{2}
                               << (in.u8() % 7);
  MpmcRing<std::uint32_t> ring(capacity);
  std::deque<std::uint32_t> reference;
  std::uint32_t next_value = 0;

  while (in.remaining() > 0) {
    const std::uint8_t op = in.u8();
    if (op % 2 == 0) {
      const bool pushed = ring.try_push(next_value);
      FUZZ_CHECK(pushed == (reference.size() < capacity));
      if (pushed) reference.push_back(next_value);
      ++next_value;
    } else {
      const std::optional<std::uint32_t> got = ring.try_pop();
      FUZZ_CHECK(got.has_value() == !reference.empty());
      if (got.has_value()) {
        FUZZ_CHECK(*got == reference.front());
        reference.pop_front();
      }
    }
    FUZZ_CHECK(ring.size_approx() == reference.size());
  }

  // Drain: everything pushed must come back out, in order.
  while (!reference.empty()) {
    const std::optional<std::uint32_t> got = ring.try_pop();
    FUZZ_CHECK(got.has_value());
    FUZZ_CHECK(*got == reference.front());
    reference.pop_front();
  }
  FUZZ_CHECK(!ring.try_pop().has_value());
  return 0;
}
