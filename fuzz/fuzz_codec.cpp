// Fuzz harness: the replication-payload wire codec.
//
// Feeds arbitrary bytes into decode_replication_payload.  The decoder must
// either reject the buffer with one of its documented exception types or
// produce a payload whose re-encoding is canonical: encode(decode(x))
// re-decodes to the same bytes.  Anything else — a crash, an unexpected
// exception type, an unbounded allocation, or a non-idempotent round-trip —
// is a finding.
#include <stdexcept>

#include "common/codec.hpp"
#include "fuzz_util.hpp"

using namespace stash;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const codec::Buffer input(data, data + size);
  std::vector<ChunkContribution> payload;
  try {
    payload = codec::decode_replication_payload(input);
  } catch (const std::invalid_argument&) {
    return 0;  // malformed key / summary
  } catch (const std::out_of_range&) {
    return 0;  // truncated or implausible counts
  } catch (const std::overflow_error&) {
    return 0;  // varint overflow
  }

  // Accepted payloads must round-trip canonically.  The input itself may be
  // non-minimal (e.g. padded varints), so compare re-encodings of the two
  // decodes rather than the raw input.
  const codec::Buffer once = codec::encode_replication_payload(payload);
  const auto payload2 = codec::decode_replication_payload(once);
  FUZZ_CHECK(payload2.size() == payload.size());
  const codec::Buffer twice = codec::encode_replication_payload(payload2);
  FUZZ_CHECK(once == twice);

  // encoded_size must agree with the materialised encoding.
  FUZZ_CHECK(codec::encoded_size(payload) == once.size());
  return 0;
}
