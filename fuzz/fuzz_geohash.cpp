// Fuzz harness: geohash encode/decode/pack round-trips and hierarchy laws.
//
// The entropy-maximizing-geohash literature shows how easy it is to get
// geohash bit-twiddling subtly wrong; this harness pins the invariants:
//   * is_valid(s)  =>  decode(s) succeeds, encode(center, |s|) == s,
//                      unpack(pack(s)) == s, parent is a prefix
//   * !is_valid(s) =>  decode(s) throws std::invalid_argument
//   * any in-range point encodes to a cell whose box contains it
//   * unpack accepts a u64 iff it is the pack() of some valid hash,
//     and then pack(unpack(x)) == x (strict wire validation)
#include <algorithm>
#include <stdexcept>
#include <string>

#include "fuzz_util.hpp"
#include "geo/geohash.hpp"

using namespace stash;

namespace {

void check_valid_hash(const std::string& gh) {
  const BoundingBox box = geohash::decode(gh);
  FUZZ_CHECK(box.valid());
  FUZZ_CHECK(box.lat_min >= -90.0 && box.lat_max <= 90.0);
  FUZZ_CHECK(box.lng_min >= -180.0 && box.lng_max <= 180.0);
  // The cell's own center encodes back to the same hash.
  FUZZ_CHECK(geohash::encode(box.center(), static_cast<int>(gh.size())) == gh);
  // Pack is stable and strict.
  const std::uint64_t packed = geohash::pack(gh);
  FUZZ_CHECK(geohash::unpack(packed) == gh);
  // Parent is a strict prefix covering this cell.
  if (const auto parent = geohash::parent(gh)) {
    FUZZ_CHECK(gh.rfind(*parent, 0) == 0);
    FUZZ_CHECK(geohash::decode(*parent).contains(box));
  }
  // Neighbors are valid, same precision, and adjacent (share no interior).
  for (const auto& n : geohash::neighbors(gh)) {
    FUZZ_CHECK(geohash::is_valid(n));
    FUZZ_CHECK(n.size() == gh.size());
  }
  // The antipode is a valid hash at the same precision.
  FUZZ_CHECK(geohash::antipode(gh).size() == gh.size());
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Byte string as a hash candidate.
  const std::string candidate(reinterpret_cast<const char*>(data),
                              std::min<std::size_t>(size, 16));
  if (geohash::is_valid(candidate)) {
    check_valid_hash(candidate);
  } else {
    try {
      (void)geohash::decode(candidate);
      FUZZ_CHECK(false && "decode accepted an invalid hash");
    } catch (const std::invalid_argument&) {
      // expected
    }
  }

  fuzz::ByteReader in(data, size);

  // Arbitrary u64 through unpack: must either throw or round-trip exactly.
  const std::uint64_t packed = in.u64();
  try {
    const std::string unpacked = geohash::unpack(packed);
    FUZZ_CHECK(geohash::is_valid(unpacked));
    FUZZ_CHECK(geohash::pack(unpacked) == packed);
  } catch (const std::invalid_argument&) {
    // expected for malformed keys
  }

  // Arbitrary doubles through encode: garbage (NaN/out-of-range) must be
  // rejected, in-range points must land inside their cell.
  const double lat = in.f64();
  const double lng = in.f64();
  const int precision = 1 + in.u8() % geohash::kMaxPrecision;
  const bool in_range =
      lat >= -90.0 && lat <= 90.0 && lng >= -180.0 && lng <= 180.0;
  try {
    const std::string gh = geohash::encode({lat, lng}, precision);
    FUZZ_CHECK(in_range);
    FUZZ_CHECK(static_cast<int>(gh.size()) == precision);
    const BoundingBox box = geohash::decode(gh);
    // encode halves toward the upper bound, so boundary points sit on the
    // closed lower edges of their cell.
    FUZZ_CHECK(lat >= box.lat_min && lat <= box.lat_max);
    FUZZ_CHECK(lng >= box.lng_min && lng <= box.lng_max);
  } catch (const std::invalid_argument&) {
    FUZZ_CHECK(!in_range);
  }
  return 0;
}
