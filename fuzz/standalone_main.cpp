// Standalone driver so the fuzz harnesses build and smoke-run on any
// toolchain.  With -DSTASH_FUZZ=ON (Clang) the harnesses link against real
// libFuzzer instead and this file is not compiled.
//
// Usage:
//   <harness> [iterations]       deterministic pseudo-random inputs
//   <harness> file...            replay corpus files (e.g. crash repros)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int replay_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  std::printf("replaying %s (%zu bytes)\n", path, bytes.size());
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::atol(argv[1]) == 0) {
    int rc = 0;
    for (int i = 1; i < argc; ++i) rc |= replay_file(argv[i]);
    return rc;
  }

  const long iterations = argc > 1 ? std::atol(argv[1]) : 20000;
  std::mt19937_64 rng(0x57a5'4f00dULL);  // fixed seed: reproducible smoke runs
  std::vector<std::uint8_t> bytes;
  for (long i = 0; i < iterations; ++i) {
    // Mostly short inputs (structure-sensitive parsers fail fast on long
    // garbage), with an occasional longer buffer for the codec harness.
    const std::size_t len = i % 16 == 0 ? rng() % 512 : rng() % 64;
    bytes.resize(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  std::printf("ok: %ld deterministic inputs\n", iterations);
  return 0;
}
